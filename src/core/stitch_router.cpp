#include "core/stitch_router.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <optional>

#include "assign/panel_ops.hpp"
#include "exec/cancellation.hpp"
#include "exec/thread_pool.hpp"
#include "netlist/decompose.hpp"
#include "telemetry/keys.hpp"
#include "telemetry/telemetry.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace mebl::core {

using geom::LayerId;
using geom::Orientation;

StitchAwareRouter::StitchAwareRouter(const grid::RoutingGrid& grid,
                                     const netlist::Netlist& netlist,
                                     RouterConfig config)
    : grid_(&grid), netlist_(&netlist), config_(std::move(config)) {}

void StitchAwareRouter::assign_layers(assign::RoutePlan& plan,
                                      exec::ThreadPool& pool) const {
  telemetry::Counter& panels = telemetry::counter(telemetry::keys::kLayerPanels);
  // Each panel owns a disjoint set of runs, so panels are independent tasks:
  // a body writes only its own runs' layer slots and the outcome does not
  // depend on the execution order. The per-panel work lives in
  // assign::assign_panel_layers so the ECO path can re-run single panels.
  const bool colorable_subset =
      config_.layer_algorithm == LayerAlgorithm::kColorableSubset;
  const auto assign_panel = [&](const std::vector<std::size_t>& run_ids,
                                const std::vector<LayerId>& layers,
                                bool column_panel) {
    if (run_ids.empty()) return;
    TELEMETRY_SPAN("assign.layer.panel");
    assign::assign_panel_layers(plan, run_ids, layers, column_panel,
                                colorable_subset);
    panels.add(1);
  };

  const auto v_layers = grid_->layers_with(Orientation::kVertical);
  pool.parallel_for(0, static_cast<std::size_t>(grid_->tiles_x()),
                    [&](std::size_t tx) {
                      assign_panel(assign::runs_in_column_panel(
                                       plan, static_cast<int>(tx)),
                                   v_layers, true);
                    });
  const auto h_layers = grid_->layers_with(Orientation::kHorizontal);
  pool.parallel_for(0, static_cast<std::size_t>(grid_->tiles_y()),
                    [&](std::size_t ty) {
                      assign_panel(
                          assign::runs_in_row_panel(plan, static_cast<int>(ty)),
                          h_layers, false);
                    });
}

void StitchAwareRouter::assign_tracks(assign::RoutePlan& plan,
                                      RoutingResult& result,
                                      exec::ThreadPool& pool) const {
  using telemetry::counter;
  namespace keys = telemetry::keys;
  telemetry::Counter& panels = counter(keys::kTrackPanels);
  telemetry::Counter& ilp_nodes = counter(keys::kTrackIlpNodes);
  telemetry::Counter& ilp_fallbacks = counter(keys::kTrackIlpFallbacks);
  telemetry::Counter& bad_ends = counter(keys::kTrackBadEnds);
  telemetry::Counter& ripped = counter(keys::kTrackRipped);
  telemetry::Histogram& panel_ns = telemetry::histogram(keys::kTrackPanelNs);

  // Gather every (column panel, vertical layer) instance up front; each is
  // an independent task writing a disjoint set of runs. Task construction
  // lives in assign::build_track_tasks so the ECO path can rebuild exactly
  // the panels it dirtied.
  std::vector<int> all_panels(static_cast<std::size_t>(grid_->tiles_x()));
  for (int tx = 0; tx < grid_->tiles_x(); ++tx)
    all_panels[static_cast<std::size_t>(tx)] = tx;
  std::vector<assign::TrackPanelTask> tasks =
      assign::build_track_tasks(plan, *grid_, all_panels);

  // The ILP budget is one absolute deadline shared by every worker: panels
  // starting after it fall back to the heuristic immediately, and the
  // branch-and-bound aborts mid-search when it passes (SolveOptions::
  // deadline), so one over-budget panel cannot overshoot the budget.
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(config_.ilp_budget_seconds));
  auto ilp_options = config_.ilp;
  ilp_options.deadline = deadline;
  std::atomic<bool> budget_exceeded{false};

  util::Timer stage_timer;
  pool.parallel_for(0, tasks.size(), [&](std::size_t t) {
    assign::TrackPanelTask& task = tasks[t];
    TELEMETRY_SPAN("assign.track.panel");
    const std::uint64_t panel_start_ns = telemetry::now_ns();

    assign::TrackAssignResult assigned;
    switch (config_.track_algorithm) {
      case TrackAlgorithm::kBaseline:
        assigned = assign::track_assign_baseline(task.instance);
        break;
      case TrackAlgorithm::kGraph:
        assigned = assign::track_assign_graph(task.instance);
        break;
      case TrackAlgorithm::kIlp: {
        if (std::chrono::steady_clock::now() >= deadline) {
          budget_exceeded.exchange(true, std::memory_order_acq_rel);
          ilp_fallbacks.add(1);
          assigned = assign::track_assign_graph(task.instance);
        } else {
          assigned = assign::track_assign_ilp(task.instance, ilp_options);
          ilp_nodes.add(assigned.ilp_nodes);
          if (!assigned.solved) {
            budget_exceeded.exchange(true, std::memory_order_acq_rel);
            ilp_fallbacks.add(1);
            assigned = assign::track_assign_graph(task.instance);
          }
        }
        break;
      }
    }

    assign::apply_track_result(plan, task, assigned);
    panels.add(1);
    bad_ends.add(assigned.total_bad_ends);
    ripped.add(assigned.total_ripped);
    panel_ns.record_ns(telemetry::now_ns() - panel_start_ns);
  });

  if (budget_exceeded.load(std::memory_order_acquire))
    result.ilp_budget_exceeded = true;
  counter(keys::kTrackIlpNs)
      .add(static_cast<std::int64_t>(stage_timer.seconds() * 1e9));
}

RoutingResult StitchAwareRouter::run() {
  TELEMETRY_SPAN("pipeline.run");
  namespace keys = telemetry::keys;
  const telemetry::StatsSnapshot stats_before = telemetry::snapshot_counters();

  RoutingResult result;
  const auto subnets = netlist::decompose_all(*netlist_);

  // A service shares one pool and one token across jobs (set_pool /
  // set_cancellation); a batch run builds both locally.
  std::optional<exec::ThreadPool> local_pool;
  if (pool_ == nullptr) local_pool.emplace(config_.num_threads);
  exec::ThreadPool& pool = pool_ != nullptr ? *pool_ : *local_pool;
  exec::Cancellation local_cancel;
  exec::Cancellation& cancel = cancel_ != nullptr ? *cancel_ : local_cancel;
  const auto begin_stage = [&](Stage stage) {
    for (ProgressObserver* observer : observers_)
      observer->on_stage_begin(stage);
  };
  const auto end_stage = [&](Stage stage, double seconds) {
    for (ProgressObserver* observer : observers_)
      observer->on_stage_end(stage, seconds);
  };
  const auto any_wants_cancel = [&] {
    return std::any_of(
        observers_.begin(), observers_.end(),
        [](ProgressObserver* observer) { return observer->should_cancel(); });
  };
  // Polled at stage boundaries (and, via the global router's progress hook,
  // between net batches). Sticky through the Cancellation token.
  const auto cancelled = [&] {
    if (any_wants_cancel()) cancel.request_stop();
    return cancel.stop_requested();
  };
  const auto finalize = [&](bool was_cancelled) -> RoutingResult& {
    result.cancelled = was_cancelled;
    if (was_cancelled) {
      // The token's reason was set by whichever stop landed first; observer
      // cancels without an explicit reason read as user cancels.
      result.stop_reason = cancel.reason() == exec::StopReason::kNone
                               ? exec::StopReason::kUser
                               : cancel.reason();
    }
    result.stats_ =
        telemetry::delta(stats_before, telemetry::snapshot_counters());
    return result;
  };

  // The spans and the StageTimes struct report the same boundaries; the
  // struct stays populated for API compatibility with existing harnesses.
  util::Timer timer;
  {
    TELEMETRY_SPAN("pipeline.global");
    begin_stage(Stage::kGlobal);
    global::GlobalRouter global_router(*grid_, config_.global);
    global::GlobalRouter::ProgressFn progress;
    if (!observers_.empty())
      progress = [&](std::size_t routed, std::size_t total) {
        for (ProgressObserver* observer : observers_)
          observer->on_nets_routed(routed, total);
        if (any_wants_cancel()) cancel.request_stop();
      };
    result.global = global_router.route(subnets, &pool, &cancel, progress);
    // Record the global-stage quality counters before the stage boundary so
    // per-stage report snapshots carry them.
    telemetry::counter(keys::kGlobalWirelength).add(result.global.wirelength);
    telemetry::counter(keys::kGlobalVertexOverflow)
        .add(result.global.total_vertex_overflow);
    telemetry::counter(keys::kGlobalVertexOverflowMax)
        .add(result.global.max_vertex_overflow);
    telemetry::counter(keys::kGlobalEdgeOverflow)
        .add(result.global.total_edge_overflow);
  }
  result.times.global_seconds = timer.seconds();
  end_stage(Stage::kGlobal, result.times.global_seconds);
  if (cancelled()) return finalize(true);

  timer.reset();
  {
    TELEMETRY_SPAN("pipeline.layer_assign");
    begin_stage(Stage::kLayerAssign);
    result.plan = assign::extract_runs(result.global, *grid_);
    assign_layers(result.plan, pool);
  }
  result.times.layer_seconds = timer.seconds();
  end_stage(Stage::kLayerAssign, result.times.layer_seconds);
  if (cancelled()) return finalize(true);

  timer.reset();
  {
    TELEMETRY_SPAN("pipeline.track_assign");
    begin_stage(Stage::kTrackAssign);
    assign_tracks(result.plan, result, pool);
  }
  result.times.track_seconds = timer.seconds();
  end_stage(Stage::kTrackAssign, result.times.track_seconds);
  if (cancelled()) return finalize(true);

  timer.reset();
  {
    TELEMETRY_SPAN("pipeline.detail");
    begin_stage(Stage::kDetail);
    result.grid = std::make_shared<detail::GridGraph>(*grid_);
    detail::DetailedRouter detailed(*result.grid, config_.detail);
    detailed.claim_pins(*netlist_);
    detail::DetailedRouter::ProgressFn progress;
    if (!observers_.empty())
      progress = [&](std::size_t routed, std::size_t total) {
        for (ProgressObserver* observer : observers_)
          observer->on_nets_routed(routed, total);
        if (any_wants_cancel()) cancel.request_stop();
      };
    result.detail =
        detailed.route_all(subnets, result.plan, &pool, &cancel, progress);
  }
  result.times.detail_seconds = timer.seconds();
  end_stage(Stage::kDetail, result.times.detail_seconds);
  if (cancelled()) return finalize(true);

  timer.reset();
  {
    TELEMETRY_SPAN("pipeline.metrics");
    begin_stage(Stage::kMetrics);
    result.metrics =
        eval::compute_metrics(*result.grid, *netlist_, subnets, result.detail);
    // Counters must land before end_stage fires: stage-boundary observers
    // (report::RunReportBuilder) snapshot the registry at the boundary, so
    // anything added later would be missing from the metrics-stage delta.
    telemetry::counter(keys::kShortPolygons)
        .add(result.metrics.short_polygons);
    telemetry::counter(keys::kViaViolations)
        .add(result.metrics.via_violations);
    telemetry::counter(keys::kVerticalViolations)
        .add(result.metrics.vertical_violations);
    telemetry::counter(keys::kWirelength).add(result.metrics.wirelength);
    telemetry::counter(keys::kVias).add(result.metrics.vias);
    telemetry::counter(keys::kRoutedNets).add(result.metrics.routed_nets);
    telemetry::counter(keys::kTotalNets).add(result.metrics.total_nets);
    end_stage(Stage::kMetrics, timer.seconds());
  }

  util::log_info() << "routed " << result.metrics.routed_nets << "/"
                   << result.metrics.total_nets << " nets, #SP="
                   << result.metrics.short_polygons << ", #VV="
                   << result.metrics.via_violations << ", WL="
                   << result.metrics.wirelength;
  return finalize(false);
}

}  // namespace mebl::core
