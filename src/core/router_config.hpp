#pragma once

#include <cstdint>

#include "assign/stage.hpp"
#include "detail/detailed_router.hpp"
#include "global/global_router.hpp"

namespace mebl::core {

/// Layer-assignment heuristic selection (Table VI comparison). Alias of the
/// assign-level enum so RouterConfig and assign::StageConfig share one
/// vocabulary; the enumerator names are unchanged.
using LayerAlgorithm = assign::LayerMethod;

/// Track-assignment algorithm selection (Table VII comparison); alias of
/// the assign-level enum, as above.
using TrackAlgorithm = assign::TrackMethod;

/// Full pipeline configuration. The default constructs the paper's
/// stitch-aware router; `baseline()` constructs the comparison router of
/// Table III (conventional objectives at every stage).
///
/// The preferred way to customize a config is the fluent `with_*` builder
/// chain, which reads as one expression and keeps working when fields move
/// behind validation later:
///
///   auto config = RouterConfig::stitch_aware()
///                     .with_track_algorithm(TrackAlgorithm::kIlp)
///                     .with_ilp_budget(30.0)
///                     .with_threads(8);
///
/// Direct field access remains supported for existing callers and for the
/// knobs without a builder yet.
struct RouterConfig {
  global::GlobalRouterConfig global;
  LayerAlgorithm layer_algorithm = LayerAlgorithm::kColorableSubset;
  TrackAlgorithm track_algorithm = TrackAlgorithm::kGraph;
  /// Per-panel ILP knobs. Like `ilp.deadline`, the `warm_start`, `pool` and
  /// `node_budget` members are overwritten by the assignment stage from the
  /// router-level fields below; set those instead.
  assign::IlpTrackOptions ilp;
  /// Wall-clock budget for all ILP panels of one circuit, enforced as one
  /// absolute deadline shared by every worker: panels that start after it
  /// fall back to the graph heuristic, and the branch-and-bound aborts
  /// mid-solve when it passes, so a single over-budget panel cannot blow
  /// past the budget. Runs that hit the deadline are flagged (the paper
  /// reports such circuits as NA). Where a cut-off lands is inherently
  /// machine-dependent; replayable flows set ilp_node_budget instead.
  double ilp_budget_seconds = 60.0;
  /// Deterministic alternative to the wall-clock budget: > 0 caps every
  /// panel's branch-and-bound at this many nodes and disables all wall-clock
  /// ILP limits, making track assignment a pure function of the input at
  /// any thread count and on any machine. This is what the mebl_serve ECO
  /// path uses so node-budgeted ILP reroutes pass the replay verify gate.
  std::int64_t ilp_node_budget = 0;
  /// Seed each panel's ILP with the graph heuristic's assignment (initial
  /// incumbent + branch hint). Pruning starts at the heuristic cost instead
  /// of +inf — usually a large node-count cut at identical objective value.
  bool ilp_warm_start = true;
  /// Fuse layer and track assignment into one panel-level pipeline: each
  /// column panel's track solve starts the moment its own layer assignment
  /// lands, so layer work of panel i+1 overlaps track work of panel i on
  /// the pool. The routed result is bit-identical to the staged order; the
  /// per-stage telemetry split moves into the fused stage.
  bool assign_pipeline = true;
  detail::DetailedConfig detail;
  /// Worker threads for the parallel pipeline stages (panel-parallel
  /// layer/track assignment, net-batch-parallel global routing,
  /// disjoint-batch-parallel detailed routing).
  /// 0 = std::thread::hardware_concurrency(). Routed results are
  /// bit-identical for every value — see DESIGN.md §7.
  int num_threads = 0;

  // ------------------------------------------------------ fluent builders

  RouterConfig& with_layer_algorithm(LayerAlgorithm algorithm) {
    layer_algorithm = algorithm;
    return *this;
  }
  RouterConfig& with_track_algorithm(TrackAlgorithm algorithm) {
    track_algorithm = algorithm;
    return *this;
  }
  /// `num_threads` as above; 0 selects hardware concurrency.
  RouterConfig& with_threads(int threads) {
    num_threads = threads;
    return *this;
  }
  /// Wall-clock ILP budget (absolute deadline) in seconds.
  RouterConfig& with_ilp_budget(double seconds) {
    ilp_budget_seconds = seconds;
    return *this;
  }
  /// Deterministic ILP budget: cap each panel's branch-and-bound at `nodes`
  /// and drop every wall-clock ILP limit (see ilp_node_budget above).
  RouterConfig& with_ilp_node_budget(std::int64_t nodes) {
    ilp_node_budget = nodes;
    return *this;
  }
  /// Toggle graph-heuristic warm starts for the per-panel ILP solves.
  RouterConfig& with_ilp_warm_start(bool enabled) {
    ilp_warm_start = enabled;
    return *this;
  }
  /// Toggle the fused layer/track panel pipeline (see assign_pipeline
  /// above). Off runs the two stages with a barrier between them; the
  /// routed result is identical either way.
  RouterConfig& with_assign_pipeline(bool enabled) {
    assign_pipeline = enabled;
    return *this;
  }
  /// Toggle the disjoint-batch parallel main pass of detailed routing
  /// (DESIGN.md §9). Off forces the strictly sequential loop; the routed
  /// result is identical either way — this knob exists for measurement and
  /// for bisecting scheduler issues, not for correctness.
  RouterConfig& with_detail_parallelism(bool enabled) {
    detail.parallel = enabled;
    return *this;
  }
  /// Tiled/sparse congestion storage for global routing (DESIGN.md §15):
  /// demand/cost tables materialize lazily per touched tile. The routed
  /// result is bit-identical either way; turn it on for paper-scale grids
  /// where the dense tables dominate memory.
  RouterConfig& with_tiled_grid(bool enabled) {
    global.tiled_grid = enabled;
    return *this;
  }
  /// Toggle the coarsen–route–refine multilevel global pass (DESIGN.md
  /// §15): long subnets route on a coarsened graph first, then refine
  /// inside the resulting corridor (full-grid fallback on failure).
  RouterConfig& with_multilevel(bool enabled) {
    global.multilevel.enabled = enabled;
    return *this;
  }

  /// The paper's stitch-aware configuration (alpha=1, beta=10, gamma=5).
  static RouterConfig stitch_aware();

  /// The baseline router of Table III: conventional resource estimation,
  /// conventional layer/track assignment, no stitch costs or ordering in
  /// detailed routing. Hard constraints (no vertical routing on lines, vias
  /// on lines only at pins) remain enforced, as in the paper's baseline.
  static RouterConfig baseline();
};

}  // namespace mebl::core
