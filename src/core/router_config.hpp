#pragma once

#include "assign/track_assign.hpp"
#include "detail/detailed_router.hpp"
#include "global/global_router.hpp"

namespace mebl::core {

/// Layer-assignment heuristic selection (Table VI comparison).
enum class LayerAlgorithm {
  kMaxSpanningTree,  ///< baseline of [4]
  kColorableSubset,  ///< ours (iterative max-weight k-colorable subsets)
};

/// Track-assignment algorithm selection (Table VII comparison).
enum class TrackAlgorithm {
  kBaseline,  ///< stitch-oblivious first-fit (baseline router)
  kIlp,       ///< exact multicommodity-flow ILP (eqs. 5-9)
  kGraph,     ///< graph-based dogleg heuristic (SIII-C2)
};

/// Full pipeline configuration. The default constructs the paper's
/// stitch-aware router; `baseline()` constructs the comparison router of
/// Table III (conventional objectives at every stage).
struct RouterConfig {
  global::GlobalRouterConfig global;
  LayerAlgorithm layer_algorithm = LayerAlgorithm::kColorableSubset;
  TrackAlgorithm track_algorithm = TrackAlgorithm::kGraph;
  assign::IlpTrackOptions ilp;
  /// Wall-clock budget for all ILP panels of one circuit; once exceeded the
  /// remaining panels fall back to the graph heuristic and the result is
  /// flagged (the paper reports such circuits as NA).
  double ilp_budget_seconds = 60.0;
  detail::DetailedConfig detail;

  /// The paper's stitch-aware configuration (alpha=1, beta=10, gamma=5).
  static RouterConfig stitch_aware();

  /// The baseline router of Table III: conventional resource estimation,
  /// conventional layer/track assignment, no stitch costs or ordering in
  /// detailed routing. Hard constraints (no vertical routing on lines, vias
  /// on lines only at pins) remain enforced, as in the paper's baseline.
  static RouterConfig baseline();
};

}  // namespace mebl::core
