#pragma once

#include "assign/track_assign.hpp"
#include "detail/detailed_router.hpp"
#include "global/global_router.hpp"

namespace mebl::core {

/// Layer-assignment heuristic selection (Table VI comparison).
enum class LayerAlgorithm {
  kMaxSpanningTree,  ///< baseline of [4]
  kColorableSubset,  ///< ours (iterative max-weight k-colorable subsets)
};

/// Track-assignment algorithm selection (Table VII comparison).
enum class TrackAlgorithm {
  kBaseline,  ///< stitch-oblivious first-fit (baseline router)
  kIlp,       ///< exact multicommodity-flow ILP (eqs. 5-9)
  kGraph,     ///< graph-based dogleg heuristic (SIII-C2)
};

/// Full pipeline configuration. The default constructs the paper's
/// stitch-aware router; `baseline()` constructs the comparison router of
/// Table III (conventional objectives at every stage).
///
/// The preferred way to customize a config is the fluent `with_*` builder
/// chain, which reads as one expression and keeps working when fields move
/// behind validation later:
///
///   auto config = RouterConfig::stitch_aware()
///                     .with_track_algorithm(TrackAlgorithm::kIlp)
///                     .with_ilp_budget(30.0)
///                     .with_threads(8);
///
/// Direct field access remains supported for existing callers and for the
/// knobs without a builder yet.
struct RouterConfig {
  global::GlobalRouterConfig global;
  LayerAlgorithm layer_algorithm = LayerAlgorithm::kColorableSubset;
  TrackAlgorithm track_algorithm = TrackAlgorithm::kGraph;
  assign::IlpTrackOptions ilp;
  /// Wall-clock budget for all ILP panels of one circuit, enforced as one
  /// absolute deadline shared by every worker: panels that start after it
  /// fall back to the graph heuristic, and the branch-and-bound aborts
  /// mid-solve when it passes, so a single over-budget panel cannot blow
  /// past the budget. Runs that hit the deadline are flagged (the paper
  /// reports such circuits as NA).
  double ilp_budget_seconds = 60.0;
  detail::DetailedConfig detail;
  /// Worker threads for the parallel pipeline stages (panel-parallel
  /// layer/track assignment, net-batch-parallel global routing,
  /// disjoint-batch-parallel detailed routing).
  /// 0 = std::thread::hardware_concurrency(). Routed results are
  /// bit-identical for every value — see DESIGN.md §7.
  int num_threads = 0;

  // ------------------------------------------------------ fluent builders

  RouterConfig& with_layer_algorithm(LayerAlgorithm algorithm) {
    layer_algorithm = algorithm;
    return *this;
  }
  RouterConfig& with_track_algorithm(TrackAlgorithm algorithm) {
    track_algorithm = algorithm;
    return *this;
  }
  /// `num_threads` as above; 0 selects hardware concurrency.
  RouterConfig& with_threads(int threads) {
    num_threads = threads;
    return *this;
  }
  /// Wall-clock ILP budget (absolute deadline) in seconds.
  RouterConfig& with_ilp_budget(double seconds) {
    ilp_budget_seconds = seconds;
    return *this;
  }
  /// Toggle the disjoint-batch parallel main pass of detailed routing
  /// (DESIGN.md §9). Off forces the strictly sequential loop; the routed
  /// result is identical either way — this knob exists for measurement and
  /// for bisecting scheduler issues, not for correctness.
  RouterConfig& with_detail_parallelism(bool enabled) {
    detail.parallel = enabled;
    return *this;
  }

  /// The paper's stitch-aware configuration (alpha=1, beta=10, gamma=5).
  static RouterConfig stitch_aware();

  /// The baseline router of Table III: conventional resource estimation,
  /// conventional layer/track assignment, no stitch costs or ordering in
  /// detailed routing. Hard constraints (no vertical routing on lines, vias
  /// on lines only at pins) remain enforced, as in the paper's baseline.
  static RouterConfig baseline();
};

}  // namespace mebl::core
