#include "core/router_config.hpp"

namespace mebl::core {

RouterConfig RouterConfig::stitch_aware() {
  RouterConfig config;  // defaults are the stitch-aware settings
  config.detail.astar.alpha = 1.0;
  config.detail.astar.beta = 10.0;
  config.detail.astar.gamma = 5.0;
  // Batch-synchronous global routing (the parallel unit of work). The batch
  // size is part of the determinism contract — fixed here, never derived
  // from the thread count.
  config.global.net_batch_size = 32;
  return config;
}

RouterConfig RouterConfig::baseline() {
  RouterConfig config;
  config.global.stitch_aware_capacity = false;
  config.global.vertex_cost = false;
  config.global.net_batch_size = 32;
  config.layer_algorithm = LayerAlgorithm::kMaxSpanningTree;
  config.track_algorithm = TrackAlgorithm::kBaseline;
  config.detail.astar.stitch_cost = false;
  config.detail.stitch_net_ordering = false;
  return config;
}

}  // namespace mebl::core
