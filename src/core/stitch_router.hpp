#pragma once

#include <memory>

#include "core/router_config.hpp"
#include "eval/metrics.hpp"
#include "telemetry/telemetry.hpp"

namespace mebl::core {

/// Per-stage wall-clock breakdown of one routing run.
struct StageTimes {
  double global_seconds = 0.0;
  double layer_seconds = 0.0;
  double track_seconds = 0.0;
  double detail_seconds = 0.0;

  [[nodiscard]] double total() const noexcept {
    return global_seconds + layer_seconds + track_seconds + detail_seconds;
  }
};

/// Everything a routing run produces: the per-stage artifacts, the final
/// occupancy grid, and the table metrics.
struct RoutingResult {
  global::GlobalResult global;
  assign::RoutePlan plan;
  detail::DetailedResult detail;
  eval::RouteMetrics metrics;
  StageTimes times;

  /// Final routed geometry (kept alive for plotting / re-analysis).
  std::shared_ptr<detail::GridGraph> grid;

  /// Set when the ILP budget ran out and panels fell back to the heuristic
  /// (reported as NA in the Table VII harness).
  bool ilp_budget_exceeded = false;

  /// Per-run telemetry counter deltas: everything the run burned — rip-ups,
  /// A* expansions, ILP branch-and-bound nodes, bad ends, short polygons —
  /// keyed by the names in telemetry/keys.hpp. This replaces the former
  /// ad-hoc stat fields (ilp_nodes, ilp_seconds, track_bad_ends,
  /// track_ripped); e.g. stats().value(telemetry::keys::kTrackIlpNodes).
  [[nodiscard]] const telemetry::StatsSnapshot& stats() const noexcept {
    return stats_;
  }

  /// Populated by StitchAwareRouter::run(); exposed through stats().
  telemetry::StatsSnapshot stats_;
};

/// The complete two-pass bottom-up stitch-aware routing flow (paper Fig. 6):
/// global routing -> stitch-aware layer assignment -> short-polygon-avoiding
/// track assignment -> stitch-aware detailed routing with rip-up/reroute.
class StitchAwareRouter {
 public:
  StitchAwareRouter(const grid::RoutingGrid& grid,
                    const netlist::Netlist& netlist,
                    RouterConfig config = RouterConfig::stitch_aware());

  /// Execute the full pipeline.
  [[nodiscard]] RoutingResult run();

 private:
  void assign_layers(assign::RoutePlan& plan) const;
  void assign_tracks(assign::RoutePlan& plan, RoutingResult& result) const;

  const grid::RoutingGrid* grid_;
  const netlist::Netlist* netlist_;
  RouterConfig config_;
};

}  // namespace mebl::core
