#pragma once

#include <memory>
#include <vector>

#include "core/progress.hpp"
#include "core/router_config.hpp"
#include "eval/metrics.hpp"
#include "exec/cancellation.hpp"
#include "telemetry/telemetry.hpp"

namespace mebl::exec {
class ThreadPool;
}  // namespace mebl::exec

namespace mebl::serve {
class ResidentDesign;
}  // namespace mebl::serve

namespace mebl::core {

/// Per-stage wall-clock breakdown of one routing run.
struct StageTimes {
  double global_seconds = 0.0;
  double layer_seconds = 0.0;
  double track_seconds = 0.0;
  double detail_seconds = 0.0;

  [[nodiscard]] double total() const noexcept {
    return global_seconds + layer_seconds + track_seconds + detail_seconds;
  }
};

/// Everything a routing run produces: the per-stage artifacts, the final
/// occupancy grid, and the table metrics.
struct RoutingResult {
  global::GlobalResult global;
  assign::RoutePlan plan;
  detail::DetailedResult detail;
  eval::RouteMetrics metrics;
  StageTimes times;

  /// Final routed geometry (kept alive for plotting / re-analysis).
  std::shared_ptr<detail::GridGraph> grid;

  /// Set when the ILP budget deadline passed and panels fell back to the
  /// heuristic (reported as NA in the Table VII harness).
  bool ilp_budget_exceeded = false;

  /// Set when a ProgressObserver cancelled the run; the stages that did not
  /// run leave their artifacts empty.
  bool cancelled = false;

  /// Why the run stopped early: kUser for an observer / external cancel,
  /// kDeadline when the cancellation token's deadline passed, kNone for a
  /// run that completed. Server timeouts and client cancels both surface as
  /// cancelled == true but are distinguishable here.
  exec::StopReason stop_reason = exec::StopReason::kNone;

  /// Per-run telemetry counter deltas: everything the run burned — rip-ups,
  /// A* expansions, ILP branch-and-bound nodes, bad ends, short polygons —
  /// keyed by the names in telemetry/keys.hpp; e.g.
  /// stats().value(telemetry::keys::kTrackIlpNodes).
  [[nodiscard]] const telemetry::StatsSnapshot& stats() const noexcept {
    return stats_;
  }

 private:
  friend class StitchAwareRouter;  // populates the snapshot in run()
  /// The serving layer refreshes the snapshot with per-ECO deltas.
  friend class mebl::serve::ResidentDesign;
  telemetry::StatsSnapshot stats_;
};

/// The complete two-pass bottom-up stitch-aware routing flow (paper Fig. 6):
/// global routing -> stitch-aware layer assignment -> short-polygon-avoiding
/// track assignment -> stitch-aware detailed routing with rip-up/reroute.
///
/// The pipeline is parallel at the decomposition boundaries the paper
/// already defines — panels for layer/track assignment, net batches within
/// a multilevel level for global routing — on a work-stealing thread pool
/// sized by RouterConfig::num_threads. Results are bit-identical for every
/// thread count (DESIGN.md §7).
class StitchAwareRouter {
 public:
  StitchAwareRouter(const grid::RoutingGrid& grid,
                    const netlist::Netlist& netlist,
                    RouterConfig config = RouterConfig::stitch_aware());

  /// Replace the observer list with this single observer (stage boundaries,
  /// nets routed, cancellation). Pass nullptr to detach all. The pointer
  /// must outlive run().
  StitchAwareRouter& set_observer(ProgressObserver* observer) {
    observers_.clear();
    if (observer != nullptr) observers_.push_back(observer);
    return *this;
  }

  /// Append an observer; every registered observer sees every callback, so
  /// progress display and report building compose on one run. Cancellation
  /// is requested when ANY observer's should_cancel() returns true.
  StitchAwareRouter& add_observer(ProgressObserver* observer) {
    if (observer != nullptr) observers_.push_back(observer);
    return *this;
  }

  /// Run on this externally-owned pool instead of creating one per run().
  /// Lets a long-running service share one pool across jobs. The pool must
  /// outlive run(); pass nullptr to revert to the internal per-run pool.
  StitchAwareRouter& set_pool(exec::ThreadPool* pool) {
    pool_ = pool;
    return *this;
  }

  /// Use this externally-owned cancellation token so callers on other
  /// threads can stop the run (with a reason and/or deadline). The token
  /// must outlive run(); pass nullptr to revert to an internal token that
  /// only observers can trip.
  StitchAwareRouter& set_cancellation(exec::Cancellation* cancel) {
    cancel_ = cancel;
    return *this;
  }

  /// Execute the full pipeline.
  [[nodiscard]] RoutingResult run();

 private:
  /// Map RouterConfig onto the assign-layer stage configuration (enum
  /// selections pass through — they are aliases — plus the ILP budget
  /// fields the stages overwrite into the per-panel options).
  [[nodiscard]] assign::StageConfig make_stage_config() const;
  void assign_layers(assign::RoutePlan& plan, exec::ThreadPool& pool) const;
  void assign_tracks(assign::RoutePlan& plan, RoutingResult& result,
                     exec::ThreadPool& pool) const;

  const grid::RoutingGrid* grid_;
  const netlist::Netlist* netlist_;
  RouterConfig config_;
  std::vector<ProgressObserver*> observers_;
  exec::ThreadPool* pool_ = nullptr;
  exec::Cancellation* cancel_ = nullptr;
};

}  // namespace mebl::core
