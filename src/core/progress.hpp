#pragma once

#include <cstddef>

namespace mebl::core {

/// The stages of the stitch-aware pipeline, in execution order.
enum class Stage {
  kGlobal,       ///< multilevel congestion-driven global routing
  kLayerAssign,  ///< stitch-aware layer assignment over panels
  kTrackAssign,  ///< short-polygon-avoiding track assignment over panels
  kDetail,       ///< detailed routing with rip-up/reroute
  kMetrics,      ///< final metric evaluation
};

[[nodiscard]] constexpr const char* stage_name(Stage stage) noexcept {
  switch (stage) {
    case Stage::kGlobal: return "global";
    case Stage::kLayerAssign: return "layer_assign";
    case Stage::kTrackAssign: return "track_assign";
    case Stage::kDetail: return "detail";
    case Stage::kMetrics: return "metrics";
  }
  return "?";
}

/// Push-style progress interface for StitchAwareRouter: callers (the CLI, a
/// service wrapper) register one observer instead of polling the router.
///
/// Callbacks fire on the thread that calls StitchAwareRouter::run().
/// should_cancel() is polled at stage boundaries and between global-routing
/// net batches; returning true makes the router stop scheduling further
/// work and return a partial RoutingResult with `cancelled` set. All
/// default implementations are no-ops, so observers override only what
/// they need.
class ProgressObserver {
 public:
  virtual ~ProgressObserver() = default;

  virtual void on_stage_begin(Stage /*stage*/) {}
  /// `seconds` is the stage's wall-clock time.
  virtual void on_stage_end(Stage /*stage*/, double /*seconds*/) {}
  /// Subnets with a committed global route so far (fires per net batch
  /// during the global stage).
  virtual void on_nets_routed(std::size_t /*routed*/, std::size_t /*total*/) {}
  /// Return true to cancel the run at the next check point.
  [[nodiscard]] virtual bool should_cancel() { return false; }
};

}  // namespace mebl::core
