#pragma once

#include <atomic>

namespace mebl::exec {

/// Cooperative cancellation token shared between a caller and the workers of
/// a ThreadPool job. request_stop() is sticky: once set, every subsequent
/// stop_requested() returns true. Tasks that have not started when the stop
/// arrives are skipped (the pool stops scheduling); tasks already running
/// finish normally unless they poll the token themselves.
///
/// Both operations are lock-free and safe to call from any thread, including
/// from inside a parallel_for body.
class Cancellation {
 public:
  Cancellation() = default;
  Cancellation(const Cancellation&) = delete;
  Cancellation& operator=(const Cancellation&) = delete;

  void request_stop() noexcept {
    stop_.store(true, std::memory_order_release);
  }

  [[nodiscard]] bool stop_requested() const noexcept {
    return stop_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> stop_{false};
};

}  // namespace mebl::exec
