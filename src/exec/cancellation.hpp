#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace mebl::exec {

/// Why a Cancellation fired. The distinction matters to callers that must
/// report timeouts differently from user cancels (the serve daemon returns
/// "deadline" errors for the former and "cancelled" acks for the latter).
enum class StopReason : std::uint8_t {
  kNone = 0,      ///< no stop requested
  kUser = 1,      ///< an explicit request_stop() (client cancel, shutdown)
  kDeadline = 2,  ///< the token's deadline passed
};

[[nodiscard]] constexpr const char* stop_reason_name(StopReason reason) noexcept {
  switch (reason) {
    case StopReason::kNone: return "none";
    case StopReason::kUser: return "user";
    case StopReason::kDeadline: return "deadline";
  }
  return "?";
}

/// Cooperative cancellation token shared between a caller and the workers of
/// a ThreadPool job. request_stop() is sticky: once set, every subsequent
/// stop_requested() returns true. Tasks that have not started when the stop
/// arrives are skipped (the pool stops scheduling); tasks already running
/// finish normally unless they poll the token themselves.
///
/// A token may additionally carry a *deadline*: the first stop_requested()
/// poll at or after the deadline trips the token with StopReason::kDeadline.
/// The first stop wins — reason() never changes once set, so a user cancel
/// that races a timeout reports deterministically whichever landed first.
///
/// All operations are lock-free and safe to call from any thread, including
/// from inside a parallel_for body.
class Cancellation {
 public:
  Cancellation() = default;
  Cancellation(const Cancellation&) = delete;
  Cancellation& operator=(const Cancellation&) = delete;

  void request_stop(StopReason reason = StopReason::kUser) const noexcept {
    std::uint8_t expected = 0;
    reason_.compare_exchange_strong(expected, static_cast<std::uint8_t>(reason),
                                    std::memory_order_acq_rel);
    stop_.store(true, std::memory_order_release);
  }

  /// Arm (or move) the deadline. Pass time_point{} to clear. Polls in
  /// stop_requested() trip the token once the clock reaches it.
  void set_deadline(std::chrono::steady_clock::time_point deadline) noexcept {
    deadline_ns_.store(deadline.time_since_epoch().count(),
                       std::memory_order_release);
  }

  [[nodiscard]] bool has_deadline() const noexcept {
    return deadline_ns_.load(std::memory_order_acquire) != 0;
  }

  [[nodiscard]] bool stop_requested() const noexcept {
    if (stop_.load(std::memory_order_acquire)) return true;
    const std::int64_t deadline = deadline_ns_.load(std::memory_order_acquire);
    if (deadline != 0 &&
        std::chrono::steady_clock::now().time_since_epoch().count() >=
            deadline) {
      request_stop(StopReason::kDeadline);
      return true;
    }
    return false;
  }

  /// The first stop's reason; kNone while no stop has been requested.
  [[nodiscard]] StopReason reason() const noexcept {
    return static_cast<StopReason>(reason_.load(std::memory_order_acquire));
  }

 private:
  mutable std::atomic<bool> stop_{false};
  mutable std::atomic<std::uint8_t> reason_{0};
  std::atomic<std::int64_t> deadline_ns_{0};
};

}  // namespace mebl::exec
