#include "exec/thread_pool.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <mutex>
#include <utility>

#include "telemetry/keys.hpp"
#include "telemetry/telemetry.hpp"

namespace mebl::exec {

namespace {

// Pool scheduling counters (all in telemetry::keys::execution_dependent():
// steal counts and wake-ups are thread-timing accidents, never routing
// output). References cached once; add() is a relaxed sharded increment.
telemetry::Counter& steals_counter() {
  static telemetry::Counter& counter =
      telemetry::counter(telemetry::keys::kExecSteals);
  return counter;
}
telemetry::Counter& chunks_counter() {
  static telemetry::Counter& counter =
      telemetry::counter(telemetry::keys::kExecChunksRun);
  return counter;
}
telemetry::Counter& wakeups_counter() {
  static telemetry::Counter& counter =
      telemetry::counter(telemetry::keys::kExecIdleWakeups);
  return counter;
}

/// Set while a pool worker (or a caller already inside parallel_for) is
/// executing chunks; nested parallel_for calls detect it and run inline.
thread_local bool t_inside_parallel_for = false;

/// One contiguous slice of the index range.
struct Chunk {
  std::size_t begin;
  std::size_t end;
};

}  // namespace

/// One parallel_for invocation. Lives on the caller's stack; workers only
/// touch it between registering and deregistering under State::mutex, and
/// the caller does not return before every registered worker has left.
struct ThreadPool::Job {
  const std::function<void(std::size_t)>* body = nullptr;
  const Cancellation* cancel = nullptr;
  /// The submitting thread's telemetry request tag; workers install it for
  /// the duration of their participation so spans recorded inside the body
  /// carry the right request id even when several serve dispatch lanes
  /// share the process (each lane tags its own thread via RequestScope).
  std::uint64_t request_tag = 0;

  /// Work-stealing deques, one per participant (0 = the calling thread).
  struct Queue {
    std::mutex mutex;
    std::deque<Chunk> chunks;
  };
  std::vector<std::unique_ptr<Queue>> queues;

  /// Sticky failure flag: set on the first body exception, stops the
  /// scheduling of chunks that have not started yet.
  std::atomic<bool> failed{false};
  std::mutex error_mutex;
  std::exception_ptr error;

  /// Workers currently inside run_participant (guarded by State::mutex).
  int active_workers = 0;
};

/// Worker wake-up / job hand-off coordination for one pool.
struct ThreadPool::State {
  std::mutex mutex;
  std::condition_variable wake_cv;  ///< workers sleep here between jobs
  std::condition_variable done_cv;  ///< caller waits for workers to drain
  Job* job = nullptr;               ///< current job, null when idle
  std::uint64_t epoch = 0;          ///< bumped per job so workers join once
  bool shutdown = false;

  /// Serializes parallel_for calls from different external threads: the
  /// pool runs one job at a time.
  std::mutex submit_mutex;
};

ThreadPool::ThreadPool(int num_threads)
    : concurrency_(num_threads > 0 ? num_threads : hardware_threads()),
      state_(std::make_unique<State>()) {
  workers_.reserve(static_cast<std::size_t>(concurrency_ - 1));
  for (int i = 1; i < concurrency_; ++i)
    workers_.emplace_back(
        [this, i] { worker_loop(static_cast<std::size_t>(i)); });
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(state_->mutex);
    state_->shutdown = true;
  }
  state_->wake_cv.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::run_participant(Job& job, std::size_t participant) {
  const std::size_t num_queues = job.queues.size();
  for (;;) {
    Chunk chunk{0, 0};
    bool found = false;
    {
      // Own queue first, newest chunk (LIFO keeps caches warm).
      Job::Queue& own = *job.queues[participant];
      const std::lock_guard<std::mutex> lock(own.mutex);
      if (!own.chunks.empty()) {
        chunk = own.chunks.back();
        own.chunks.pop_back();
        found = true;
      }
    }
    // Steal oldest-first from the other queues, round-robin from our
    // right-hand neighbour so victims spread across participants.
    for (std::size_t v = 1; !found && v < num_queues; ++v) {
      Job::Queue& victim = *job.queues[(participant + v) % num_queues];
      const std::lock_guard<std::mutex> lock(victim.mutex);
      if (!victim.chunks.empty()) {
        chunk = victim.chunks.front();
        victim.chunks.pop_front();
        found = true;
        steals_counter().add(1);
      }
    }
    if (!found) return;
    chunks_counter().add(1);

    if (job.failed.load(std::memory_order_acquire) ||
        (job.cancel != nullptr && job.cancel->stop_requested()))
      continue;  // claimed but skipped: scheduling has stopped
    try {
      for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
        if (job.failed.load(std::memory_order_relaxed) ||
            (job.cancel != nullptr && job.cancel->stop_requested()))
          break;
        (*job.body)(i);
      }
    } catch (...) {
      const std::lock_guard<std::mutex> lock(job.error_mutex);
      if (!job.error) job.error = std::current_exception();
      job.failed.store(true, std::memory_order_release);
    }
  }
}

void ThreadPool::worker_loop(std::size_t participant) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(state_->mutex);
      state_->wake_cv.wait(lock, [&] {
        return state_->shutdown ||
               (state_->job != nullptr && state_->epoch != seen_epoch);
      });
      if (state_->shutdown) return;
      seen_epoch = state_->epoch;
      job = state_->job;
      ++job->active_workers;
    }
    wakeups_counter().add(1);
    const std::uint64_t previous_tag =
        telemetry::exchange_request_tag(job->request_tag);
    t_inside_parallel_for = true;
    run_participant(*job, participant);
    t_inside_parallel_for = false;
    telemetry::exchange_request_tag(previous_tag);
    {
      const std::lock_guard<std::mutex> lock(state_->mutex);
      if (--job->active_workers == 0) state_->done_cv.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body,
                              const Cancellation* cancel) {
  if (end <= begin) return;
  const std::size_t n = end - begin;

  // Inline paths: single-threaded pools, single-index ranges, and nested
  // calls from inside a body. Exceptions propagate directly; cancellation
  // stops before the next index.
  if (concurrency_ == 1 || n == 1 || t_inside_parallel_for) {
    for (std::size_t i = begin; i < end; ++i) {
      if (cancel != nullptr && cancel->stop_requested()) return;
      body(i);
    }
    return;
  }

  Job job;
  job.body = &body;
  job.cancel = cancel;
  job.request_tag = telemetry::current_request();
  const auto participants = static_cast<std::size_t>(concurrency_);
  // ~4 chunks per participant: coarse enough that scheduling stays cheap,
  // fine enough that one slow chunk can be compensated by stealing.
  const std::size_t num_chunks = std::min(n, participants * 4);
  const std::size_t grain = (n + num_chunks - 1) / num_chunks;
  job.queues.reserve(participants);
  for (std::size_t p = 0; p < participants; ++p)
    job.queues.push_back(std::make_unique<Job::Queue>());
  std::size_t next = begin;
  for (std::size_t c = 0; next < end; ++c) {
    const std::size_t chunk_end = std::min(end, next + grain);
    job.queues[c % participants]->chunks.push_back(Chunk{next, chunk_end});
    next = chunk_end;
  }

  {
    const std::lock_guard<std::mutex> submit(state_->submit_mutex);
    {
      const std::lock_guard<std::mutex> lock(state_->mutex);
      job.active_workers = 0;
      state_->job = &job;
      ++state_->epoch;
    }
    state_->wake_cv.notify_all();

    t_inside_parallel_for = true;
    run_participant(job, 0);
    t_inside_parallel_for = false;

    // Close the job to late-waking workers, then wait for the registered
    // ones to drain. Once active_workers hits zero every claimed chunk has
    // finished, so the stack-allocated job is safe to destroy.
    std::unique_lock<std::mutex> lock(state_->mutex);
    state_->job = nullptr;
    state_->done_cv.wait(lock, [&] { return job.active_workers == 0; });
  }

  if (job.error) std::rethrow_exception(job.error);
}

}  // namespace mebl::exec
