#pragma once

// mebl::exec — the execution layer of the routing pipeline.
//
// A work-stealing thread pool with a blocking parallel_for over index
// ranges. The pipeline's unit of work is coarse (a panel, a batch of nets),
// so the scheduler favours simplicity and a strong determinism contract
// over raw task throughput:
//
//  * Every index in [begin, end) is executed exactly once (absent
//    cancellation), on some participating thread. Which thread runs which
//    index is unspecified; callers therefore write results *per index* and
//    merge them in index order after the call returns. Under that
//    discipline the outcome is bit-identical for any thread count,
//    including 1 — the repo-wide determinism contract (DESIGN.md §7).
//  * parallel_for blocks until every index has run; it is a barrier.
//  * The calling thread participates as a worker, so a pool of
//    concurrency N spawns only N-1 background threads and
//    ThreadPool(1) executes everything inline on the caller.
//  * An exception thrown by the body stops further scheduling; the first
//    exception is rethrown on the calling thread after the barrier.
//  * A Cancellation token stops the scheduling of not-yet-started work;
//    parallel_for then returns normally with the remaining indices unrun
//    (the only case where "exactly once" becomes "at most once").
//
// Scheduling: the range is split into ~4 chunks per participant,
// distributed round-robin across per-participant deques. A participant
// pops its own deque LIFO and steals FIFO from the others when empty, so
// imbalanced chunks (one slow ILP panel) migrate to idle threads.
//
// parallel_for is not reentrant from inside a body; nested calls run the
// inner range inline on the calling worker (same results, no deadlock).

#include <cstddef>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "exec/cancellation.hpp"

namespace mebl::exec {

class ThreadPool {
 public:
  /// `num_threads` <= 0 selects std::thread::hardware_concurrency().
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of threads that execute work (background workers + caller).
  [[nodiscard]] int concurrency() const noexcept { return concurrency_; }

  /// Hardware concurrency, never less than 1.
  [[nodiscard]] static int hardware_threads() noexcept {
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<int>(n);
  }

  /// Execute body(i) for every i in [begin, end), blocking until all have
  /// run. See the header comment for the determinism/exception/cancel
  /// contract.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body,
                    const Cancellation* cancel = nullptr);

  /// parallel_for over the elements of an indexable sequence.
  template <typename Seq, typename Fn>
  void parallel_for_each(Seq&& seq, Fn&& fn,
                         const Cancellation* cancel = nullptr) {
    const std::function<void(std::size_t)> body = [&](std::size_t i) {
      fn(seq[i]);
    };
    parallel_for(0, seq.size(), body, cancel);
  }

 private:
  struct Job;
  struct State;  // worker wake-up / job hand-off coordination

  void worker_loop(std::size_t participant);
  /// Pop/steal/execute chunks of `job` until none are reachable.
  static void run_participant(Job& job, std::size_t participant);

  int concurrency_;
  std::unique_ptr<State> state_;
  std::vector<std::thread> workers_;
};

/// Deterministic map: results[i] = fn(i), computed in parallel, returned in
/// index order. The canonical way to fan work out and merge it back under
/// the determinism contract.
template <typename R, typename Fn>
[[nodiscard]] std::vector<R> parallel_map(ThreadPool& pool, std::size_t n,
                                          Fn&& fn,
                                          const Cancellation* cancel = nullptr) {
  std::vector<R> results(n);
  pool.parallel_for(
      0, n, [&](std::size_t i) { results[i] = fn(i); }, cancel);
  return results;
}

}  // namespace mebl::exec
