#pragma once

#include "grid/routing_grid.hpp"

namespace mebl::grid {

/// Identifier of a global-routing tile (GCell) in the tiling of a
/// RoutingGrid. Flattened index = ty * tiles_x + tx.
struct GCellId {
  int tx = 0;
  int ty = 0;

  friend constexpr bool operator==(GCellId, GCellId) = default;
};

/// MEBL-aware routing-resource model for GCells (paper SIII-A, Fig. 7).
///
/// The capacity of a tile boundary is the number of tracks that may carry a
/// wire across it; stitching lines remove vertical tracks (vertical routing
/// constraint), so top/bottom boundaries of tiles containing a line lose
/// capacity. Each tile additionally has a *line-end capacity*: the number of
/// vertical tracks outside stitch unfriendly regions, an upper bound on the
/// number of vertical line ends the tile can host without risking short
/// polygons.
class CapacityModel {
 public:
  explicit CapacityModel(const RoutingGrid& grid) : grid_(&grid) {}

  /// Wires crossing the boundary between (tx,ty) and (tx+1,ty) are
  /// horizontal; capacity = tracks along y times horizontal layer count.
  [[nodiscard]] int horizontal_edge_capacity(int tx, int ty) const;

  /// Wires crossing the boundary between (tx,ty) and (tx,ty+1) are vertical;
  /// capacity = stitch-free vertical tracks times vertical layer count.
  [[nodiscard]] int vertical_edge_capacity(int tx, int ty) const;

  /// Line-end capacity of tile (tx,ty): vertical tracks outside stitch
  /// unfriendly regions, times vertical layer count.
  [[nodiscard]] int line_end_capacity(int tx, int ty) const;

  /// Same capacities with the stitch plan ignored (conventional-lithography
  /// estimation, used for the baseline router comparison).
  [[nodiscard]] int vertical_edge_capacity_no_stitch(int tx, int ty) const;

 private:
  const RoutingGrid* grid_;
};

}  // namespace mebl::grid
