#include "grid/stitch_plan.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace mebl::grid {

using geom::Coord;
using geom::Interval;

StitchPlan::StitchPlan(Coord width, Coord pitch, Coord epsilon,
                       Coord escape_halfwidth)
    : width_(width),
      pitch_(pitch),
      epsilon_(epsilon),
      escape_halfwidth_(escape_halfwidth) {
  assert(width > 0);
  assert(pitch > 0);
  assert(epsilon >= 0);
  assert(escape_halfwidth >= 0);
  for (Coord x = pitch; x < width; x += pitch) lines_.push_back(x);
}

StitchPlan StitchPlan::none(Coord width) {
  StitchPlan plan;
  plan.width_ = width;
  plan.pitch_ = width + 1;  // no line fits
  return plan;
}

StitchPlan StitchPlan::from_lines(Coord width, std::vector<Coord> lines,
                                  Coord epsilon, Coord escape_halfwidth) {
  assert(width > 0);
  StitchPlan plan;
  plan.width_ = width;
  plan.epsilon_ = epsilon;
  plan.escape_halfwidth_ = escape_halfwidth;
  std::sort(lines.begin(), lines.end());
  lines.erase(std::unique(lines.begin(), lines.end()), lines.end());
  for (const Coord x : lines)
    if (x > 0 && x < width) plan.lines_.push_back(x);
  // Nominal pitch: the smallest stripe width (only informational for
  // non-uniform plans).
  plan.pitch_ = width + 1;
  Coord prev = 0;
  for (const Coord x : plan.lines_) {
    plan.pitch_ = std::min(plan.pitch_, x - prev);
    prev = x;
  }
  if (!plan.lines_.empty())
    plan.pitch_ = std::min(plan.pitch_, width - plan.lines_.back());
  return plan;
}

bool StitchPlan::is_stitch_column(Coord x) const noexcept {
  return std::binary_search(lines_.begin(), lines_.end(), x);
}

Coord StitchPlan::distance_to_line(Coord x) const noexcept {
  if (lines_.empty()) return std::numeric_limits<Coord>::max() / 2;
  auto it = std::lower_bound(lines_.begin(), lines_.end(), x);
  Coord best = std::numeric_limits<Coord>::max() / 2;
  if (it != lines_.end()) best = std::min(best, *it - x);
  if (it != lines_.begin()) best = std::min(best, x - *std::prev(it));
  return best;
}

std::vector<Coord> StitchPlan::lines_cutting(Interval span) const {
  std::vector<Coord> cut;
  if (span.empty()) return cut;
  auto it = std::upper_bound(lines_.begin(), lines_.end(), span.lo);
  for (; it != lines_.end() && *it < span.hi; ++it) cut.push_back(*it);
  return cut;
}

Coord StitchPlan::free_tracks(Interval span) const noexcept {
  if (span.empty()) return 0;
  auto lo = std::lower_bound(lines_.begin(), lines_.end(), span.lo);
  auto hi = std::upper_bound(lines_.begin(), lines_.end(), span.hi);
  return span.length() - static_cast<Coord>(hi - lo);
}

Coord StitchPlan::line_end_capacity(Interval span) const noexcept {
  if (span.empty()) return 0;
  Coord capacity = 0;
  for (Coord x = span.lo; x <= span.hi; ++x)
    if (!in_unfriendly_region(x)) ++capacity;
  return capacity;
}

}  // namespace mebl::grid
