#include "grid/gcell.hpp"

#include <cassert>

namespace mebl::grid {

using geom::Orientation;

int CapacityModel::horizontal_edge_capacity([[maybe_unused]] int tx, int ty) const {
  assert(tx >= 0 && tx + 1 < grid_->tiles_x());
  const int h_layers =
      static_cast<int>(grid_->layers_with(Orientation::kHorizontal).size());
  return grid_->tile_y_span(ty).length() * h_layers;
}

int CapacityModel::vertical_edge_capacity(int tx, [[maybe_unused]] int ty) const {
  assert(ty >= 0 && ty + 1 < grid_->tiles_y());
  const int v_layers =
      static_cast<int>(grid_->layers_with(Orientation::kVertical).size());
  return grid_->stitch().free_tracks(grid_->tile_x_span(tx)) * v_layers;
}

int CapacityModel::vertical_edge_capacity_no_stitch(int tx, [[maybe_unused]] int ty) const {
  assert(ty >= 0 && ty + 1 < grid_->tiles_y());
  const int v_layers =
      static_cast<int>(grid_->layers_with(Orientation::kVertical).size());
  return grid_->tile_x_span(tx).length() * v_layers;
}

int CapacityModel::line_end_capacity(int tx, int ty) const {
  (void)ty;
  const int v_layers =
      static_cast<int>(grid_->layers_with(Orientation::kVertical).size());
  return grid_->stitch().line_end_capacity(grid_->tile_x_span(tx)) * v_layers;
}

}  // namespace mebl::grid
