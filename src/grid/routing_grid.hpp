#pragma once

#include <vector>

#include "geom/rect.hpp"
#include "grid/stitch_plan.hpp"

namespace mebl::grid {

/// Static description of the routing fabric: layout extent in tracks, the
/// routing layer stack with preferred directions, the GCell tiling used by
/// global routing / assignment, and the stitching-line plan.
///
/// Layer conventions:
///  * layer 0 is the pin layer (pins only; no routing on it);
///  * routing layers 1..num_routing_layers alternate preferred direction,
///    layer 1 horizontal (HVH for 3 layers, HVHVHV for 6 — matching the
///    MCNC / Faraday setups in the paper).
class RoutingGrid {
 public:
  RoutingGrid(geom::Coord width, geom::Coord height, int num_routing_layers,
              geom::Coord tile_size, StitchPlan plan);

  [[nodiscard]] geom::Coord width() const noexcept { return width_; }
  [[nodiscard]] geom::Coord height() const noexcept { return height_; }
  [[nodiscard]] geom::Rect extent() const noexcept {
    return {0, 0, width_ - 1, height_ - 1};
  }
  [[nodiscard]] bool in_bounds(geom::Point p) const noexcept {
    return extent().contains(p);
  }
  [[nodiscard]] bool in_bounds(geom::Point3 p) const noexcept {
    return extent().contains(p.xy()) && p.layer >= 0 && p.layer <= num_routing_layers_;
  }

  /// Total layer count including the pin layer 0.
  [[nodiscard]] int num_layers() const noexcept { return num_routing_layers_ + 1; }
  [[nodiscard]] int num_routing_layers() const noexcept {
    return num_routing_layers_;
  }

  /// Preferred direction of a routing layer (layer >= 1).
  [[nodiscard]] geom::Orientation layer_dir(geom::LayerId layer) const noexcept;

  /// Routing layers with the given preferred direction, ascending.
  [[nodiscard]] std::vector<geom::LayerId> layers_with(
      geom::Orientation dir) const;

  // --- GCell tiling --------------------------------------------------------

  [[nodiscard]] geom::Coord tile_size() const noexcept { return tile_size_; }
  [[nodiscard]] int tiles_x() const noexcept { return tiles_x_; }
  [[nodiscard]] int tiles_y() const noexcept { return tiles_y_; }
  [[nodiscard]] int tile_of_x(geom::Coord x) const noexcept {
    return static_cast<int>(x / tile_size_);
  }
  [[nodiscard]] int tile_of_y(geom::Coord y) const noexcept {
    return static_cast<int>(y / tile_size_);
  }
  /// Track range covered by tile column tx (clipped to the layout).
  [[nodiscard]] geom::Interval tile_x_span(int tx) const noexcept;
  /// Track range covered by tile row ty (clipped to the layout).
  [[nodiscard]] geom::Interval tile_y_span(int ty) const noexcept;

  [[nodiscard]] const StitchPlan& stitch() const noexcept { return stitch_; }

 private:
  geom::Coord width_;
  geom::Coord height_;
  int num_routing_layers_;
  geom::Coord tile_size_;
  int tiles_x_;
  int tiles_y_;
  StitchPlan stitch_;
};

}  // namespace mebl::grid
