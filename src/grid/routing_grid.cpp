#include "grid/routing_grid.hpp"

#include <algorithm>
#include <cassert>

namespace mebl::grid {

using geom::Coord;
using geom::Interval;
using geom::LayerId;
using geom::Orientation;

RoutingGrid::RoutingGrid(Coord width, Coord height, int num_routing_layers,
                         Coord tile_size, StitchPlan plan)
    : width_(width),
      height_(height),
      num_routing_layers_(num_routing_layers),
      tile_size_(tile_size),
      stitch_(std::move(plan)) {
  assert(width > 0 && height > 0);
  assert(num_routing_layers >= 2);  // at least one H and one V layer
  assert(tile_size > 0);
  assert(stitch_.width() == width);
  tiles_x_ = static_cast<int>((width + tile_size - 1) / tile_size);
  tiles_y_ = static_cast<int>((height + tile_size - 1) / tile_size);
}

Orientation RoutingGrid::layer_dir(LayerId layer) const noexcept {
  assert(layer >= 1 && layer <= num_routing_layers_);
  return layer % 2 == 1 ? Orientation::kHorizontal : Orientation::kVertical;
}

std::vector<LayerId> RoutingGrid::layers_with(Orientation dir) const {
  std::vector<LayerId> out;
  for (LayerId l = 1; l <= num_routing_layers_; ++l)
    if (layer_dir(l) == dir) out.push_back(l);
  return out;
}

Interval RoutingGrid::tile_x_span(int tx) const noexcept {
  assert(tx >= 0 && tx < tiles_x_);
  const Coord lo = static_cast<Coord>(tx) * tile_size_;
  return {lo, std::min<Coord>(lo + tile_size_ - 1, width_ - 1)};
}

Interval RoutingGrid::tile_y_span(int ty) const noexcept {
  assert(ty >= 0 && ty < tiles_y_);
  const Coord lo = static_cast<Coord>(ty) * tile_size_;
  return {lo, std::min<Coord>(lo + tile_size_ - 1, height_ - 1)};
}

}  // namespace mebl::grid
