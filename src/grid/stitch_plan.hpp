#pragma once

#include <vector>

#include "geom/interval.hpp"
#include "geom/point.hpp"

namespace mebl::grid {

/// Placement of the MEBL stitching lines over a layout and the derived
/// keep-out geometry.
///
/// Stitching lines are vertical (the beam stripes run top-to-bottom) and are
/// uniformly distributed across the layout, `pitch` tracks apart (the paper
/// uses 15 routing pitches). Around each line:
///
///  * the line column itself is forbidden for vertical wires and vias
///    (hard via / vertical-routing constraints);
///  * tracks within `epsilon` of a line form the *stitch unfriendly region* —
///    a vertical line end there, whose horizontal wire crosses the line,
///    creates a short polygon (soft constraint, minimized);
///  * tracks within `escape_halfwidth` of a line form the *escape region*
///    that the detailed router keeps lightly used so nets crossing the line
///    can escape without creating short polygons (paper SIII-D1: the four
///    tracks nearest a line, i.e. halfwidth 2).
class StitchPlan {
 public:
  /// Lines at x = pitch, 2*pitch, ... strictly inside (0, width).
  StitchPlan(geom::Coord width, geom::Coord pitch, geom::Coord epsilon = 1,
             geom::Coord escape_halfwidth = 2);

  /// A plan with no stitching lines (conventional-lithography baseline).
  static StitchPlan none(geom::Coord width);

  /// A plan with explicitly placed (possibly non-uniform) lines — MEBL
  /// systems whose stripe widths vary, or hand-written test fixtures.
  /// Lines outside (0, width) are discarded; duplicates are merged.
  static StitchPlan from_lines(geom::Coord width,
                               std::vector<geom::Coord> lines,
                               geom::Coord epsilon = 1,
                               geom::Coord escape_halfwidth = 2);

  [[nodiscard]] const std::vector<geom::Coord>& lines() const noexcept {
    return lines_;
  }
  [[nodiscard]] geom::Coord width() const noexcept { return width_; }
  [[nodiscard]] geom::Coord pitch() const noexcept { return pitch_; }
  [[nodiscard]] geom::Coord epsilon() const noexcept { return epsilon_; }
  [[nodiscard]] geom::Coord escape_halfwidth() const noexcept {
    return escape_halfwidth_;
  }

  /// True when column x carries a stitching line.
  [[nodiscard]] bool is_stitch_column(geom::Coord x) const noexcept;

  /// Distance in tracks from x to the nearest stitching line
  /// (returns a value larger than the layout width when there are no lines).
  [[nodiscard]] geom::Coord distance_to_line(geom::Coord x) const noexcept;

  /// True when x lies in a stitch unfriendly region (distance <= epsilon,
  /// including the line column itself).
  [[nodiscard]] bool in_unfriendly_region(geom::Coord x) const noexcept {
    return distance_to_line(x) <= epsilon_;
  }

  /// True when x lies in an escape region (0 < distance <= escape_halfwidth).
  [[nodiscard]] bool in_escape_region(geom::Coord x) const noexcept {
    const geom::Coord d = distance_to_line(x);
    return d > 0 && d <= escape_halfwidth_;
  }

  /// Stitching lines strictly inside the open interval (span.lo, span.hi):
  /// exactly the lines that *cut* a horizontal wire spanning `span`.
  [[nodiscard]] std::vector<geom::Coord> lines_cutting(
      geom::Interval span) const;

  /// Number of tracks in [span.lo, span.hi] not on any stitching line —
  /// the vertical wire capacity of that x-range.
  [[nodiscard]] geom::Coord free_tracks(geom::Interval span) const noexcept;

  /// Number of tracks in [span.lo, span.hi] outside every stitch unfriendly
  /// region — the *line-end capacity* of that x-range (paper SIII-A).
  [[nodiscard]] geom::Coord line_end_capacity(
      geom::Interval span) const noexcept;

 private:
  StitchPlan() = default;

  geom::Coord width_ = 0;
  geom::Coord pitch_ = 0;
  geom::Coord epsilon_ = 1;
  geom::Coord escape_halfwidth_ = 2;
  std::vector<geom::Coord> lines_;  // sorted ascending
};

}  // namespace mebl::grid
