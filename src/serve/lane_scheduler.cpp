#include "serve/lane_scheduler.hpp"

namespace mebl::serve {

LaneScheduler::LaneScheduler(std::size_t lanes) {
  queues_.reserve(lanes == 0 ? 1 : lanes);
  for (std::size_t i = 0; i < (lanes == 0 ? 1 : lanes); ++i)
    queues_.push_back(std::make_unique<JobQueue>());
}

std::size_t LaneScheduler::lane_for(std::string_view design,
                                    std::size_t lanes) noexcept {
  if (lanes <= 1 || design.empty()) return 0;
  // FNV-1a, 64-bit: stable across runs and platforms (std::hash is not).
  std::uint64_t hash = 14695981039346656037ULL;
  for (const char c : design) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return static_cast<std::size_t>(hash % lanes);
}

bool LaneScheduler::push(std::uint64_t client, Request request) {
  const std::size_t lane = lane_for(request.design);
  return queues_[lane]->push(client, std::move(request));
}

bool LaneScheduler::cancel(std::uint64_t client, std::int64_t id,
                           exec::StopReason reason) {
  // The (client, id) registration lives on exactly one lane; ids are
  // client-scoped, so at most one queue answers true.
  for (const auto& queue : queues_)
    if (queue->cancel(client, id, reason)) return true;
  return false;
}

void LaneScheduler::cancel_client(std::uint64_t client) {
  for (const auto& queue : queues_) queue->cancel_client(client);
}

void LaneScheduler::finish(std::uint64_t client, std::int64_t id) {
  for (const auto& queue : queues_) queue->finish(client, id);
}

void LaneScheduler::close() {
  for (const auto& queue : queues_) queue->close();
}

std::size_t LaneScheduler::pending() const {
  std::size_t total = 0;
  for (const auto& queue : queues_) total += queue->pending();
  return total;
}

}  // namespace mebl::serve
