#include "serve/job_queue.hpp"

#include "telemetry/telemetry.hpp"

namespace mebl::serve {

bool JobQueue::push(std::uint64_t client, Request request) {
  Job job;
  job.client = client;
  job.enqueue_ns = telemetry::now_ns();
  job.cancel = std::make_shared<exec::Cancellation>();
  if (request.deadline_seconds > 0.0)
    job.cancel->set_deadline(
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(request.deadline_seconds)));
  std::lock_guard<std::mutex> lock(mutex_);
  if (closed_) return false;
  job.sequence = next_sequence_++;
  const Key key{-request.priority, job.sequence};
  live_[{client, request.id}] = job.cancel;
  job.request = std::move(request);
  queue_.emplace(key, std::move(job));
  ready_.notify_one();
  return true;
}

std::optional<Job> JobQueue::pop() {
  std::unique_lock<std::mutex> lock(mutex_);
  ready_.wait(lock, [&] { return closed_ || !queue_.empty(); });
  if (queue_.empty()) return std::nullopt;
  auto first = queue_.begin();
  Job job = std::move(first->second);
  queue_.erase(first);
  return job;
}

std::optional<Job> JobQueue::pop_head_if(
    const std::function<bool(const Job&)>& matches) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (queue_.empty()) return std::nullopt;
  auto first = queue_.begin();
  if (!matches(first->second)) return std::nullopt;
  Job job = std::move(first->second);
  queue_.erase(first);
  return job;
}

bool JobQueue::cancel(std::uint64_t client, std::int64_t id,
                      exec::StopReason reason) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = live_.find({client, id});
  if (it == live_.end()) return false;
  it->second->request_stop(reason);
  return true;
}

void JobQueue::cancel_client(std::uint64_t client) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [key, token] : live_)
    if (key.first == client) token->request_stop(exec::StopReason::kUser);
}

void JobQueue::finish(std::uint64_t client, std::int64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  live_.erase({client, id});
}

void JobQueue::close() {
  std::lock_guard<std::mutex> lock(mutex_);
  closed_ = true;
  ready_.notify_all();
}

std::size_t JobQueue::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

bool JobQueue::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

}  // namespace mebl::serve
