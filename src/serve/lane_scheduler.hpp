#pragma once

// mebl::serve lane scheduler — per-design dispatch lanes (DESIGN.md §16).
//
// One JobQueue per lane; every job's design key hashes (stable FNV-1a) to
// exactly one lane, so all jobs for one design run on one lane thread in
// (priority, arrival) order — the one-writer-per-resident invariant that
// keeps the ECO bit-identity contract trivial — while jobs for different
// designs route concurrently on other lanes. Ops without a design key
// (shutdown) land on lane 0. With a single lane this degenerates to the
// PR 6 single-dispatcher behavior exactly.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "serve/job_queue.hpp"

namespace mebl::serve {

class LaneScheduler {
 public:
  explicit LaneScheduler(std::size_t lanes);

  [[nodiscard]] std::size_t lanes() const noexcept { return queues_.size(); }

  /// The lane a design key maps to: stable FNV-1a(design) mod lanes, so
  /// the mapping never depends on arrival order or process state. Empty
  /// keys (shutdown) map to lane 0.
  [[nodiscard]] static std::size_t lane_for(std::string_view design,
                                            std::size_t lanes) noexcept;
  [[nodiscard]] std::size_t lane_for(std::string_view design) const noexcept {
    return lane_for(design, queues_.size());
  }

  /// Enqueue onto the design's lane. False once the scheduler is closed.
  bool push(std::uint64_t client, Request request);

  /// Block on one lane's queue; see JobQueue::pop.
  [[nodiscard]] std::optional<Job> pop(std::size_t lane) {
    return queues_[lane]->pop();
  }

  /// Non-blocking head-match pop on one lane; see JobQueue::pop_head_if.
  [[nodiscard]] std::optional<Job> pop_head_if(
      std::size_t lane, const std::function<bool(const Job&)>& matches) {
    return queues_[lane]->pop_head_if(matches);
  }

  /// Request-stop the job registered under (client, id) on whichever lane
  /// holds it. False when no such live job exists.
  bool cancel(std::uint64_t client, std::int64_t id,
              exec::StopReason reason = exec::StopReason::kUser);

  /// Cancel every live job of one client across all lanes.
  void cancel_client(std::uint64_t client);

  /// Drop the (client, id) cancel registration once the job has finished.
  void finish(std::uint64_t client, std::int64_t id);

  /// Close every lane queue; poppers drain and then see std::nullopt.
  void close();

  [[nodiscard]] std::size_t pending() const;            ///< sum over lanes
  [[nodiscard]] std::size_t pending(std::size_t lane) const {
    return queues_[lane]->pending();
  }
  [[nodiscard]] bool closed() const { return queues_[0]->closed(); }

 private:
  std::vector<std::unique_ptr<JobQueue>> queues_;
};

}  // namespace mebl::serve
