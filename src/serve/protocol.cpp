#include "serve/protocol.hpp"

#include <array>
#include <cstdio>

namespace mebl::serve {

using report::Json;

namespace {

constexpr std::array<const char*, 11> kOpNames = {
    "ping",       "load",       "route",    "eco",      "cancel",
    "status",     "save_state", "load_state", "shutdown", "metrics",
    "dump"};

std::int64_t get_int(const Json& json, std::string_view key,
                     std::int64_t fallback = 0) {
  const Json* value = json.get(key);
  return value != nullptr && value->is_number() ? value->as_int() : fallback;
}

double get_double(const Json& json, std::string_view key) {
  const Json* value = json.get(key);
  return value != nullptr && value->is_number() ? value->as_double() : 0.0;
}

std::string get_string(const Json& json, std::string_view key) {
  const Json* value = json.get(key);
  return value != nullptr && value->kind() == Json::Kind::kString
             ? value->as_string()
             : std::string{};
}

bool get_bool(const Json& json, std::string_view key) {
  const Json* value = json.get(key);
  return value != nullptr && value->kind() == Json::Kind::kBool &&
         value->as_bool();
}

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void dump_compact(const Json& json, std::string& out) {
  switch (json.kind()) {
    case Json::Kind::kNull: out += "null"; break;
    case Json::Kind::kBool: out += json.as_bool() ? "true" : "false"; break;
    case Json::Kind::kInt: out += std::to_string(json.as_int()); break;
    case Json::Kind::kDouble: out += report::format_double(json.as_double());
      break;
    case Json::Kind::kString: append_escaped(out, json.as_string()); break;
    case Json::Kind::kArray: {
      out.push_back('[');
      bool first = true;
      for (const Json& item : json.items()) {
        if (!first) out.push_back(',');
        first = false;
        dump_compact(item, out);
      }
      out.push_back(']');
      break;
    }
    case Json::Kind::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [key, value] : json.members()) {
        if (!first) out.push_back(',');
        first = false;
        append_escaped(out, key);
        out.push_back(':');
        dump_compact(value, out);
      }
      out.push_back('}');
      break;
    }
  }
}

}  // namespace

const char* op_name(Op op) noexcept {
  const auto index = static_cast<std::size_t>(op);
  return index < kOpNames.size() ? kOpNames[index] : "?";
}

std::optional<Op> op_from_name(std::string_view name) noexcept {
  for (std::size_t i = 0; i < kOpNames.size(); ++i)
    if (name == kOpNames[i]) return static_cast<Op>(i);
  return std::nullopt;
}

Json to_json(const Request& request) {
  Json root = Json::object();
  root["op"] = op_name(request.op);
  root["id"] = request.id;
  if (!request.design.empty()) root["design"] = request.design;
  if (!request.design_text.empty()) root["design_text"] = request.design_text;
  if (!request.path.empty()) root["path"] = request.path;
  if (request.priority != 0) root["priority"] = request.priority;
  if (request.deadline_seconds > 0.0)
    root["deadline_seconds"] = request.deadline_seconds;
  if (!request.nets.empty()) {
    Json nets = Json::array();
    for (const netlist::NetId net : request.nets)
      nets.push_back(static_cast<std::int64_t>(net));
    root["nets"] = std::move(nets);
  }
  if (!request.net_names.empty()) {
    Json names = Json::array();
    for (const std::string& name : request.net_names) names.push_back(name);
    root["net_names"] = std::move(names);
  }
  if (request.move_pin >= 0) {
    root["move_pin"] = static_cast<std::int64_t>(request.move_pin);
    root["move_to_x"] = static_cast<std::int64_t>(request.move_to.x);
    root["move_to_y"] = static_cast<std::int64_t>(request.move_to.y);
  }
  if (!request.moves.empty()) {
    Json moves = Json::array();
    for (const PinMoveSpec& move : request.moves) {
      Json entry = Json::object();
      entry["pin"] = static_cast<std::int64_t>(move.pin);
      entry["x"] = static_cast<std::int64_t>(move.to.x);
      entry["y"] = static_cast<std::int64_t>(move.to.y);
      moves.push_back(std::move(entry));
    }
    root["moves"] = std::move(moves);
  }
  if (request.verify) root["verify"] = true;
  if (request.cancel_id >= 0) root["cancel_id"] = request.cancel_id;
  return root;
}

Json to_json(const Response& response) {
  Json root = Json::object();
  root["type"] = response.type;
  root["id"] = response.id;
  if (!response.error.empty()) root["error"] = response.error;
  if (!response.payload.is_null()) root["payload"] = response.payload;
  return root;
}

std::optional<Request> parse_request(const Json& json) {
  if (json.kind() != Json::Kind::kObject) return std::nullopt;
  const auto op = op_from_name(get_string(json, "op"));
  if (!op) return std::nullopt;
  Request request;
  request.op = *op;
  request.id = get_int(json, "id");
  request.design = get_string(json, "design");
  request.design_text = get_string(json, "design_text");
  request.path = get_string(json, "path");
  request.priority = static_cast<int>(get_int(json, "priority"));
  request.deadline_seconds = get_double(json, "deadline_seconds");
  if (const Json* nets = json.get("nets");
      nets != nullptr && nets->kind() == Json::Kind::kArray)
    for (const Json& item : nets->items())
      if (item.is_number())
        request.nets.push_back(static_cast<netlist::NetId>(item.as_int()));
  if (const Json* names = json.get("net_names");
      names != nullptr && names->kind() == Json::Kind::kArray)
    for (const Json& item : names->items())
      if (item.kind() == Json::Kind::kString)
        request.net_names.push_back(item.as_string());
  request.move_pin =
      static_cast<netlist::PinId>(get_int(json, "move_pin", -1));
  request.move_to.x = static_cast<geom::Coord>(get_int(json, "move_to_x"));
  request.move_to.y = static_cast<geom::Coord>(get_int(json, "move_to_y"));
  if (const Json* moves = json.get("moves");
      moves != nullptr && moves->kind() == Json::Kind::kArray)
    for (const Json& item : moves->items()) {
      if (item.kind() != Json::Kind::kObject) continue;
      PinMoveSpec move;
      move.pin = static_cast<netlist::PinId>(get_int(item, "pin", -1));
      move.to.x = static_cast<geom::Coord>(get_int(item, "x"));
      move.to.y = static_cast<geom::Coord>(get_int(item, "y"));
      request.moves.push_back(move);
    }
  request.verify = get_bool(json, "verify");
  request.cancel_id = get_int(json, "cancel_id", -1);
  return request;
}

std::optional<Response> parse_response(const Json& json) {
  if (json.kind() != Json::Kind::kObject) return std::nullopt;
  Response response;
  response.type = get_string(json, "type");
  if (response.type.empty()) return std::nullopt;
  response.id = get_int(json, "id");
  response.error = get_string(json, "error");
  if (const Json* payload = json.get("payload"))
    response.payload = *payload;
  return response;
}

std::string dump_line(const Json& json) {
  std::string out;
  dump_compact(json, out);
  return out;
}

std::string encode(const Request& request) {
  return dump_line(to_json(request)) + "\n";
}

std::string encode(const Response& response) {
  return dump_line(to_json(response)) + "\n";
}

std::optional<Request> decode_request(std::string_view line) {
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r'))
    line.remove_suffix(1);
  const auto json = Json::parse(line);
  return json ? parse_request(*json) : std::nullopt;
}

std::optional<Response> decode_response(std::string_view line) {
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r'))
    line.remove_suffix(1);
  const auto json = Json::parse(line);
  return json ? parse_response(*json) : std::nullopt;
}

}  // namespace mebl::serve
