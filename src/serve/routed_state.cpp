#include "serve/routed_state.hpp"

#include <fstream>
#include <sstream>

#include "util/log.hpp"

namespace mebl::serve {

namespace {

void write_demand(std::ostream& out, const char* name,
                  const std::vector<int>& values) {
  out << name << ' ' << values.size();
  for (const int v : values) out << ' ' << v;
  out << '\n';
}

std::vector<int> collect_h_demand(const global::RoutingGraph& graph) {
  std::vector<int> values;
  values.reserve(static_cast<std::size_t>(graph.tiles_y()) *
                 (graph.tiles_x() - 1));
  for (int ty = 0; ty < graph.tiles_y(); ++ty)
    for (int tx = 0; tx + 1 < graph.tiles_x(); ++tx)
      values.push_back(graph.h_demand(tx, ty));
  return values;
}

std::vector<int> collect_v_demand(const global::RoutingGraph& graph) {
  std::vector<int> values;
  values.reserve(static_cast<std::size_t>(graph.tiles_x()) *
                 (graph.tiles_y() - 1));
  for (int ty = 0; ty + 1 < graph.tiles_y(); ++ty)
    for (int tx = 0; tx < graph.tiles_x(); ++tx)
      values.push_back(graph.v_demand(tx, ty));
  return values;
}

std::vector<int> collect_vertex_demand(const global::RoutingGraph& graph) {
  std::vector<int> values;
  values.reserve(static_cast<std::size_t>(graph.tiles_x()) * graph.tiles_y());
  for (int ty = 0; ty < graph.tiles_y(); ++ty)
    for (int tx = 0; tx < graph.tiles_x(); ++tx)
      values.push_back(graph.vertex_demand(tx, ty));
  return values;
}

std::optional<std::vector<int>> read_demand(std::istream& in,
                                            const std::string& expect) {
  std::string word;
  std::size_t count = 0;
  if (!(in >> word >> count) || word != expect) return std::nullopt;
  std::vector<int> values(count);
  for (int& v : values)
    if (!(in >> v)) return std::nullopt;
  return values;
}

}  // namespace

void write_routed_state(std::ostream& out, const RoutedState& state,
                        const global::RoutingGraph& graph) {
  out << "mebl_routed 1\n";

  std::ostringstream design_text;
  netlist::write_design(design_text, state.design);
  const std::string design = design_text.str();
  out << "design " << design.size() << '\n' << design;

  out << "paths " << state.global.paths.size() << '\n';
  for (const global::TilePath& path : state.global.paths) {
    out << "p " << path.net << ' ' << path.pin_a.x << ' ' << path.pin_a.y
        << ' ' << path.pin_b.x << ' ' << path.pin_b.y << ' '
        << (path.routed ? 1 : 0) << ' ' << path.tiles.size();
    for (const grid::GCellId tile : path.tiles)
      out << ' ' << tile.tx << ' ' << tile.ty;
    out << '\n';
  }

  out << "runs " << state.plan.runs.size() << '\n';
  for (const assign::GlobalRun& run : state.plan.runs) {
    out << "r " << run.net << ' ' << run.path_index << ' '
        << (run.dir == geom::Orientation::kVertical ? 'V' : 'H') << ' '
        << run.fixed_tile << ' ' << run.span.lo << ' ' << run.span.hi << ' '
        << run.lo_continuation << ' ' << run.hi_continuation << ' '
        << run.layer << ' ' << (run.ripped ? 1 : 0) << ' ' << run.bad_ends
        << ' ' << run.pieces.size();
    for (const auto& [span, track] : run.pieces)
      out << ' ' << span.lo << ' ' << span.hi << ' ' << track;
    out << '\n';
  }

  out << "path_runs " << state.plan.runs_of_path.size() << '\n';
  for (const std::vector<std::size_t>& runs : state.plan.runs_of_path) {
    out << "q " << runs.size();
    for (const std::size_t run : runs) out << ' ' << run;
    out << '\n';
  }

  out << "subnets " << state.detail.subnet_nodes.size() << '\n';
  for (std::size_t i = 0; i < state.detail.subnet_nodes.size(); ++i) {
    const auto& nodes = state.detail.subnet_nodes[i];
    out << "s " << (state.detail.subnet_routed[i] ? 1 : 0) << ' '
        << static_cast<int>(state.detail.subnet_method[i]) << ' '
        << nodes.size();
    for (const geom::Point3 p : nodes)
      out << ' ' << p.x << ' ' << p.y << ' ' << p.layer;
    out << '\n';
  }

  out << "detail_totals " << state.detail.routed << ' ' << state.detail.failed
      << ' ' << state.detail.planned_realized << ' '
      << state.detail.pattern_routed << ' ' << state.detail.astar_routed << ' '
      << state.detail.ripup_rescued << ' ' << state.detail.sp_cleanup_nets
      << '\n';
  out << "global_totals " << state.global.wirelength << ' '
      << state.global.total_vertex_overflow << ' '
      << state.global.max_vertex_overflow << ' '
      << state.global.total_edge_overflow << '\n';

  write_demand(out, "demand_h", collect_h_demand(graph));
  write_demand(out, "demand_v", collect_v_demand(graph));
  write_demand(out, "demand_vertex", collect_vertex_demand(graph));
  out << "end\n";
}

std::optional<LoadedState> read_routed_state(std::istream& in) {
  const auto fail = [](const char* why) -> std::optional<LoadedState> {
    util::log_warn() << "read_routed_state: " << why;
    return std::nullopt;
  };

  std::string word;
  int version = 0;
  if (!(in >> word >> version) || word != "mebl_routed" || version != 1)
    return fail("missing or unsupported 'mebl_routed <version>' header");

  std::size_t design_bytes = 0;
  if (!(in >> word >> design_bytes) || word != "design")
    return fail("malformed 'design' record");
  in.get();  // the newline terminating the design header
  std::string design_text(design_bytes, '\0');
  if (!in.read(design_text.data(),
               static_cast<std::streamsize>(design_bytes)))
    return fail("truncated embedded design");
  std::istringstream design_in(design_text);
  auto design = netlist::read_design(design_in);
  if (!design) return fail("embedded design does not parse");

  LoadedState loaded{RoutedState{std::move(*design), {}, {}, {}}, {}, {}, {}};

  std::size_t count = 0;
  if (!(in >> word >> count) || word != "paths")
    return fail("malformed 'paths' record");
  loaded.state.global.paths.resize(count);
  for (global::TilePath& path : loaded.state.global.paths) {
    int routed = 0;
    std::size_t tiles = 0;
    if (!(in >> word >> path.net >> path.pin_a.x >> path.pin_a.y >>
          path.pin_b.x >> path.pin_b.y >> routed >> tiles) ||
        word != "p")
      return fail("malformed 'p' record");
    path.routed = routed != 0;
    path.tiles.resize(tiles);
    for (grid::GCellId& tile : path.tiles)
      if (!(in >> tile.tx >> tile.ty)) return fail("truncated tile path");
  }

  if (!(in >> word >> count) || word != "runs")
    return fail("malformed 'runs' record");
  loaded.state.plan.runs.resize(count);
  for (assign::GlobalRun& run : loaded.state.plan.runs) {
    char dir = 'V';
    int ripped = 0;
    std::size_t pieces = 0;
    if (!(in >> word >> run.net >> run.path_index >> dir >> run.fixed_tile >>
          run.span.lo >> run.span.hi >> run.lo_continuation >>
          run.hi_continuation >> run.layer >> ripped >> run.bad_ends >>
          pieces) ||
        word != "r" || (dir != 'V' && dir != 'H'))
      return fail("malformed 'r' record");
    run.dir = dir == 'V' ? geom::Orientation::kVertical
                         : geom::Orientation::kHorizontal;
    run.ripped = ripped != 0;
    run.pieces.resize(pieces);
    for (auto& [span, track] : run.pieces)
      if (!(in >> span.lo >> span.hi >> track))
        return fail("truncated piece list");
  }

  if (!(in >> word >> count) || word != "path_runs")
    return fail("malformed 'path_runs' record");
  loaded.state.plan.runs_of_path.resize(count);
  for (std::vector<std::size_t>& runs : loaded.state.plan.runs_of_path) {
    std::size_t n = 0;
    if (!(in >> word >> n) || word != "q") return fail("malformed 'q' record");
    runs.resize(n);
    for (std::size_t& run : runs)
      if (!(in >> run) || run >= loaded.state.plan.runs.size())
        return fail("run index out of range");
  }

  if (!(in >> word >> count) || word != "subnets")
    return fail("malformed 'subnets' record");
  auto& detail = loaded.state.detail;
  detail.subnet_routed.resize(count);
  detail.subnet_nodes.resize(count);
  detail.subnet_method.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    int routed = 0, method = 0;
    std::size_t nodes = 0;
    if (!(in >> word >> routed >> method >> nodes) || word != "s" ||
        method < 0 || method > 2)
      return fail("malformed 's' record");
    detail.subnet_routed[i] = routed != 0;
    detail.subnet_method[i] = static_cast<detail::RouteMethod>(method);
    detail.subnet_nodes[i].resize(nodes);
    for (geom::Point3& p : detail.subnet_nodes[i])
      if (!(in >> p.x >> p.y >> p.layer)) return fail("truncated node list");
  }

  if (!(in >> word >> detail.routed >> detail.failed >>
        detail.planned_realized >> detail.pattern_routed >>
        detail.astar_routed >> detail.ripup_rescued >>
        detail.sp_cleanup_nets) ||
      word != "detail_totals")
    return fail("malformed 'detail_totals' record");
  auto& global = loaded.state.global;
  if (!(in >> word >> global.wirelength >> global.total_vertex_overflow >>
        global.max_vertex_overflow >> global.total_edge_overflow) ||
      word != "global_totals")
    return fail("malformed 'global_totals' record");

  auto h = read_demand(in, "demand_h");
  if (!h) return fail("malformed 'demand_h' record");
  auto v = read_demand(in, "demand_v");
  if (!v) return fail("malformed 'demand_v' record");
  auto vertex = read_demand(in, "demand_vertex");
  if (!vertex) return fail("malformed 'demand_vertex' record");
  loaded.h_demand = std::move(*h);
  loaded.v_demand = std::move(*v);
  loaded.vertex_demand = std::move(*vertex);

  if (!(in >> word) || word != "end") return fail("missing 'end' marker");
  return loaded;
}

bool verify_demand(const LoadedState& loaded,
                   const global::RoutingGraph& graph) {
  return loaded.h_demand == collect_h_demand(graph) &&
         loaded.v_demand == collect_v_demand(graph) &&
         loaded.vertex_demand == collect_vertex_demand(graph);
}

bool save_routed_state(const std::string& path, const RoutedState& state,
                       const global::RoutingGraph& graph) {
  std::ofstream out(path);
  if (!out) return false;
  write_routed_state(out, state, graph);
  return static_cast<bool>(out);
}

std::optional<LoadedState> load_routed_state(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    util::log_warn() << "load_routed_state: cannot open " << path;
    return std::nullopt;
  }
  return read_routed_state(in);
}

}  // namespace mebl::serve
