#include "serve/resident_design.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "assign/panel_ops.hpp"
#include "assign/track_assign.hpp"
#include "eval/metrics.hpp"
#include "exec/thread_pool.hpp"
#include "netlist/decompose.hpp"
#include "telemetry/keys.hpp"
#include "telemetry/telemetry.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace mebl::serve {

using geom::LayerId;
using geom::Orientation;
using geom::Point;
using geom::Point3;

std::string canonical_quality_block(const report::RunReport& report) {
  report::WriteOptions options;
  options.include_timing = false;
  const auto json = report::Json::parse(report::serialize(report, options));
  report::Json block = report::Json::object();
  if (json) {
    for (const char* key : {"design", "quality", "heatmaps", "nets"})
      if (const report::Json* member = json->get(key)) block[key] = *member;
  }
  return block.dump();
}

ResidentDesign::ResidentDesign(netlist::Design design,
                               core::RouterConfig config)
    : design_(std::move(design)), config_(std::move(config)) {
  subnets_ = netlist::decompose_all(design_.netlist);
}

void ResidentDesign::adopt_residency() {
  subnets_ = netlist::decompose_all(design_.netlist);
  global_ = std::make_unique<global::GlobalRouter>(design_.grid,
                                                   config_.global);
  global_->seed(result_.global);
  detailed_ =
      std::make_unique<detail::DetailedRouter>(*result_.grid, config_.detail);
  detailed_->claim_pins(design_.netlist);
  detailed_->restore(subnets_, result_.plan, result_.detail);
  routed_ = true;
}

std::unique_ptr<ResidentDesign> ResidentDesign::from_state(
    std::istream& in, core::RouterConfig config) {
  auto loaded = read_routed_state(in);
  if (!loaded) return nullptr;

  auto resident = std::make_unique<ResidentDesign>(
      std::move(loaded->state.design), std::move(config));
  resident->result_.global = std::move(loaded->state.global);
  resident->result_.plan = std::move(loaded->state.plan);
  resident->result_.detail = std::move(loaded->state.detail);
  resident->subnets_ = netlist::decompose_all(resident->design_.netlist);

  const auto& detail = resident->result_.detail;
  if (detail.subnet_nodes.size() != resident->subnets_.size() ||
      resident->result_.global.paths.size() != resident->subnets_.size()) {
    util::log_warn() << "from_state: subnet count mismatch";
    return nullptr;
  }

  // Reseed the global demand from the paths; the saved arrays are the
  // integrity check that the paths and the demand agree.
  resident->global_ = std::make_unique<global::GlobalRouter>(
      resident->design_.grid, resident->config_.global);
  resident->global_->seed(resident->result_.global);
  if (!verify_demand(*loaded, resident->global_->graph())) {
    util::log_warn() << "from_state: demand integrity check failed";
    return nullptr;
  }

  resident->result_.grid =
      std::make_shared<detail::GridGraph>(resident->design_.grid);
  resident->detailed_ = std::make_unique<detail::DetailedRouter>(
      *resident->result_.grid, resident->config_.detail);
  resident->detailed_->claim_pins(resident->design_.netlist);

  // Reject geometry the grid cannot carry (out of bounds or conflicting
  // claims) before restore() asserts on it.
  const auto& rg = resident->design_.grid;
  for (std::size_t i = 0; i < resident->subnets_.size(); ++i)
    for (const Point3 p : detail.subnet_nodes[i]) {
      if (p.x < 0 || p.x >= rg.width() || p.y < 0 || p.y >= rg.height() ||
          p.layer < 0 || p.layer >= rg.num_layers()) {
        util::log_warn() << "from_state: node out of bounds";
        return nullptr;
      }
      if (!resident->result_.grid->is_free_or(p, resident->subnets_[i].net)) {
        util::log_warn() << "from_state: conflicting geometry claims";
        return nullptr;
      }
    }
  resident->detailed_->restore(resident->subnets_, resident->result_.plan,
                               resident->result_.detail);
  resident->result_.metrics =
      eval::compute_metrics(*resident->result_.grid, resident->design_.netlist,
                            resident->subnets_, resident->result_.detail);
  resident->routed_ = true;
  return resident;
}

EcoOutcome ResidentDesign::route_full(exec::ThreadPool* pool,
                                      exec::Cancellation* cancel,
                                      core::ProgressObserver* observer) {
  EcoOutcome out;
  TELEMETRY_SPAN("serve.route_full");
  util::Timer timer;
  core::StitchAwareRouter router(design_.grid, design_.netlist, config_);
  report::RunReportBuilder builder;
  router.add_observer(&builder);
  if (observer != nullptr) router.add_observer(observer);
  router.set_pool(pool);
  router.set_cancellation(cancel);
  result_ = router.run();
  out.seconds = timer.seconds();
  out.cancelled = result_.cancelled;
  out.stop_reason = result_.stop_reason;
  if (result_.cancelled || result_.grid == nullptr) {
    routed_ = false;
    out.error = "run cancelled";
  } else {
    adopt_residency();
    out.ok = true;
  }
  out.report = builder.build(result_, design_.grid, design_.netlist);
  return out;
}

std::vector<netlist::NetId> ResidentDesign::resolve_nets(
    const EcoRequest& request, std::string& error) const {
  std::vector<netlist::NetId> nets = request.nets;
  for (const std::string& name : request.net_names) {
    netlist::NetId found = -1;
    for (const netlist::Net& net : design_.netlist.nets())
      if (net.name == name) {
        found = net.id;
        break;
      }
    if (found < 0) {
      error = "unknown net name '" + name + "'";
      return {};
    }
    nets.push_back(found);
  }
  for (const netlist::NetId net : nets)
    if (net < 0 ||
        static_cast<std::size_t>(net) >= design_.netlist.num_nets()) {
      error = "net id " + std::to_string(net) + " out of range";
      return {};
    }
  std::sort(nets.begin(), nets.end());
  nets.erase(std::unique(nets.begin(), nets.end()), nets.end());
  return nets;
}

EcoOutcome ResidentDesign::eco(const EcoRequest& request,
                               exec::ThreadPool* pool,
                               exec::Cancellation* cancel) {
  EcoOutcome out;
  TELEMETRY_SPAN("serve.eco");
  if (!routed_) {
    out.error = "design is not routed; run a full route first";
    return out;
  }
  std::vector<netlist::NetId> nets = resolve_nets(request, out.error);
  if (!out.error.empty()) return out;

  // --- pin-move validation (before any mutation) ---------------------------
  // Normalize the legacy single move plus the batched list into one ordered
  // list, then validate every move against sequentially-simulated pin
  // positions, so a rejected request leaves the resident untouched and a
  // coalesced batch behaves exactly like its member requests back to back.
  std::vector<PinMoveSpec> moves;
  if (request.move_pin >= 0)
    moves.push_back({request.move_pin, request.move_to});
  moves.insert(moves.end(), request.pin_moves.begin(),
               request.pin_moves.end());
  std::vector<detail::DetailedRouter::PinMove> pin_moves;
  std::map<netlist::PinId, Point> moved_to;  ///< simulated final positions
  if (!moves.empty()) {
    std::set<std::pair<geom::Coord, geom::Coord>> occupied;
    for (const netlist::Pin& pin : design_.netlist.pins())
      occupied.insert({pin.pos.x, pin.pos.y});
    for (const PinMoveSpec& move : moves) {
      if (move.pin < 0 || static_cast<std::size_t>(move.pin) >=
                              design_.netlist.num_pins()) {
        out.error = "pin id out of range";
        return out;
      }
      const netlist::Pin& pin = design_.netlist.pin(move.pin);
      const auto sim = moved_to.find(move.pin);
      const Point from = sim != moved_to.end() ? sim->second : pin.pos;
      if (!design_.grid.in_bounds(move.to)) {
        out.error = "pin destination out of bounds";
        return out;
      }
      nets.push_back(pin.net);
      if (move.to == from) continue;  // no-op move: just reroute the net
      if (occupied.count({move.to.x, move.to.y}) != 0) {
        out.error = "pin destination already carries a pin";
        return out;
      }
      occupied.erase({from.x, from.y});
      occupied.insert({move.to.x, move.to.y});
      moved_to[move.pin] = move.to;
      // Nets whose wires occupy the destination nodes must reroute so the
      // pin reservation can claim them.
      for (const LayerId layer : {LayerId{0}, LayerId{1}}) {
        const netlist::NetId owner =
            result_.grid->owner({move.to.x, move.to.y, layer});
        if (owner != -1 && owner != pin.net) nets.push_back(owner);
      }
      pin_moves.push_back({pin.net, from, move.to});
    }
    std::sort(nets.begin(), nets.end());
    nets.erase(std::unique(nets.begin(), nets.end()), nets.end());
  }
  if (nets.empty()) {
    out.error = "nothing to reroute";
    return out;
  }

  // --- bit-identity snapshot (the pre-ECO state) ---------------------------
  std::string snapshot;
  if (request.verify) {
    std::ostringstream snap;
    if (!save_state(snap)) {
      out.error = "cannot snapshot state for verification";
      return out;
    }
    snapshot = snap.str();
  }

  const telemetry::StatsSnapshot stats_before = telemetry::snapshot_counters();
  util::Timer timer;
  exec::Cancellation local_cancel;
  exec::Cancellation& stop = cancel != nullptr ? *cancel : local_cancel;

  // --- apply the pin moves to the netlist and the subnet list --------------
  if (!pin_moves.empty()) {
    for (const auto& [pin, to] : moved_to) design_.netlist.move_pin(pin, to);
    // Refresh the decomposition of every net that lost or gained a pin
    // position, once per net even when a batch moved several of its pins.
    std::vector<netlist::NetId> moved_nets;
    for (const detail::DetailedRouter::PinMove& move : pin_moves)
      moved_nets.push_back(move.net);
    std::sort(moved_nets.begin(), moved_nets.end());
    moved_nets.erase(std::unique(moved_nets.begin(), moved_nets.end()),
                     moved_nets.end());
    for (const netlist::NetId net : moved_nets) {
      const auto fresh = netlist::decompose_net(design_.netlist, net);
      std::vector<std::size_t> slots;
      for (std::size_t i = 0; i < subnets_.size(); ++i)
        if (subnets_[i].net == net) slots.push_back(i);
      if (slots.size() != fresh.size()) {
        // Decomposition is pin-count-preserving, so this cannot happen on a
        // consistent resident; bail out rather than corrupt state.
        out.error = "pin move changed the subnet count";
        routed_ = false;
        return out;
      }
      for (std::size_t k = 0; k < slots.size(); ++k)
        subnets_[slots[k]] = fresh[k];
    }
  }

  // --- global: rip the dirty closure, reroute only it ----------------------
  std::vector<std::size_t> targets;
  for (std::size_t i = 0; i < subnets_.size(); ++i)
    if (std::binary_search(nets.begin(), nets.end(), subnets_[i].net))
      targets.push_back(i);
  const std::vector<std::size_t> closure = [&] {
    TELEMETRY_SPAN("serve.eco.global");
    return global_->rip_dirty_closure(result_.global, targets);
  }();
  out.dirty_subnets = closure.size();

  if (static_cast<double>(closure.size()) >
      request.full_fallback_fraction * static_cast<double>(subnets_.size())) {
    // The closure no longer pays for itself; reroute the whole design
    // through the ordinary pipeline (which rebuilds all resident state).
    EcoOutcome full = route_full(pool, cancel, nullptr);
    full.fallback_full = true;
    full.dirty_subnets = closure.size();
    return full;
  }

  {
    TELEMETRY_SPAN("serve.eco.global");
    global_->reroute_subset(subnets_, result_.global, closure, pool, &stop);
  }

  // --- assignment: replan only the panels the closure touches --------------
  {
  TELEMETRY_SPAN("serve.eco.assign");
  std::vector<std::uint8_t> changed(result_.global.paths.size(), 0);
  for (const std::size_t idx : closure) changed[idx] = 1;
  assign::RoutePlan old_plan = std::move(result_.plan);
  assign::RoutePlan plan = assign::extract_runs(result_.global, design_.grid);

  // Unchanged paths produce identical runs, positionally; carry their
  // layer/track assignment over so only dirty panels replan.
  for (std::size_t p = 0; p < plan.runs_of_path.size(); ++p) {
    if (p < changed.size() && changed[p] != 0) continue;
    if (p >= old_plan.runs_of_path.size()) continue;
    const auto& old_runs = old_plan.runs_of_path[p];
    const auto& new_runs = plan.runs_of_path[p];
    if (old_runs.size() != new_runs.size()) continue;
    for (std::size_t j = 0; j < new_runs.size(); ++j) {
      const assign::GlobalRun& src = old_plan.runs[old_runs[j]];
      assign::GlobalRun& dst = plan.runs[new_runs[j]];
      dst.layer = src.layer;
      dst.pieces = src.pieces;
      dst.ripped = src.ripped;
      dst.bad_ends = src.bad_ends;
    }
  }

  // Dirty panels: every panel holding a run of a changed path, in the old
  // or the new plan (a rerouted path may leave one panel and enter another).
  std::set<int> dirty_columns, dirty_rows;
  const auto collect_panels = [&](const assign::RoutePlan& from) {
    for (std::size_t p = 0; p < from.runs_of_path.size(); ++p) {
      if (p >= changed.size() || changed[p] == 0) continue;
      for (const std::size_t run_id : from.runs_of_path[p]) {
        const assign::GlobalRun& run = from.runs[run_id];
        (run.dir == Orientation::kVertical ? dirty_columns : dirty_rows)
            .insert(run.fixed_tile);
      }
    }
  };
  collect_panels(old_plan);
  collect_panels(plan);

  const bool colorable =
      config_.layer_algorithm == core::LayerAlgorithm::kColorableSubset;
  const auto v_layers = design_.grid.layers_with(Orientation::kVertical);
  const auto h_layers = design_.grid.layers_with(Orientation::kHorizontal);
  for (const int tx : dirty_columns)
    assign::assign_panel_layers(plan, assign::runs_in_column_panel(plan, tx),
                                v_layers, /*column_panel=*/true, colorable);
  for (const int ty : dirty_rows)
    assign::assign_panel_layers(plan, assign::runs_in_row_panel(plan, ty),
                                h_layers, /*column_panel=*/false, colorable);

  // Track assignment over the dirty column panels. ECO only runs solvers
  // whose result is a pure function of the instance: a wall-clock ILP
  // budget would break the bit-identity / replay contract, so
  // TrackAlgorithm::kIlp runs here only in its deterministic node-budget
  // mode (RouterConfig::ilp_node_budget > 0, no clock consulted anywhere)
  // and degrades to the graph heuristic otherwise (DESIGN.md §12). The
  // panel loop stays sequential; the node-budgeted solver fans its
  // subproblems out on the job pool, which is deterministic at any pool
  // size, so ECO ILP reroutes still pass the verify replay gate.
  assign::TrackMethod track_method = config_.track_algorithm;
  assign::IlpTrackOptions ilp_options = config_.ilp;
  if (track_method == assign::TrackMethod::kIlp) {
    if (config_.ilp_node_budget > 0) {
      ilp_options.node_budget = config_.ilp_node_budget;
      ilp_options.warm_start = config_.ilp_warm_start;
      ilp_options.deadline.reset();
      ilp_options.pool = pool;
    } else {
      track_method = assign::TrackMethod::kGraph;
    }
  }
  const std::vector<int> columns(dirty_columns.begin(), dirty_columns.end());
  std::vector<assign::TrackPanelTask> tasks =
      assign::build_track_tasks(plan, design_.grid, columns);
  telemetry::Counter& ilp_nodes =
      telemetry::counter(telemetry::keys::kTrackIlpNodes);
  telemetry::Counter& ilp_budget_hits =
      telemetry::counter(telemetry::keys::kTrackIlpBudgetHits);
  for (assign::TrackPanelTask& task : tasks) {
    assign::TrackTaskStats track_stats;
    const assign::TrackAssignResult assigned =
        assign::solve_track_task(task, track_method, ilp_options, track_stats);
    assign::apply_track_result(plan, task, assigned);
    ilp_nodes.add(track_stats.ilp_nodes);
    if (track_stats.ilp_budget_hit) ilp_budget_hits.add(1);
  }
  result_.plan = std::move(plan);
  }

  // --- detail: rip and reroute exactly the affected nets -------------------
  {
    TELEMETRY_SPAN("serve.eco.detail");
    detailed_->reroute_nets(nets, pool, &stop, {}, pin_moves);
  }

  // --- refresh metrics and the run record ----------------------------------
  result_.metrics = eval::compute_metrics(*result_.grid, design_.netlist,
                                          subnets_, result_.detail);
  out.cancelled = stop.stop_requested();
  result_.cancelled = out.cancelled;
  if (out.cancelled) {
    out.stop_reason = stop.reason() == exec::StopReason::kNone
                          ? exec::StopReason::kUser
                          : stop.reason();
    result_.stop_reason = out.stop_reason;
    // A cancelled ECO leaves ripped-but-unrouted paths behind; the
    // resident must be re-routed from scratch before the next ECO.
    routed_ = false;
  } else {
    result_.stop_reason = exec::StopReason::kNone;
  }
  result_.stats_ =
      telemetry::delta(stats_before, telemetry::snapshot_counters());
  out.seconds = timer.seconds();
  out.report = report::build_run_report(result_, design_.grid,
                                        design_.netlist);
  out.ok = !out.cancelled;

  // --- bit-identity check: replay on a resident rebuilt from the snapshot --
  if (request.verify && out.ok) {
    std::istringstream snap(snapshot);
    auto rebuilt = from_state(snap, config_);
    bool matched = false;
    if (rebuilt != nullptr) {
      EcoRequest replay = request;
      replay.verify = false;
      const EcoOutcome replayed = rebuilt->eco(replay, pool, nullptr);
      matched = replayed.ok && canonical_quality_block(out.report) ==
                                   canonical_quality_block(replayed.report);
    }
    out.verified = matched;
    out.verify_mismatch = !matched;
    if (!matched)
      util::log_warn()
          << "eco verify: incremental result diverged from the replay on "
             "the reloaded pre-ECO state";
  }
  return out;
}

bool ResidentDesign::save_state(std::ostream& out) const {
  if (!routed_ || global_ == nullptr) return false;
  RoutedState state{design_, result_.global, result_.plan, result_.detail};
  write_routed_state(out, state, global_->graph());
  return static_cast<bool>(out);
}

bool ResidentDesign::save_state(const std::string& path) const {
  std::ofstream out(path);
  return out && save_state(out);
}

// ------------------------------------------------------------- DesignCache

std::shared_ptr<ResidentDesign> DesignCache::get(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = entries_.begin(); it != entries_.end(); ++it)
    if (it->first == name) {
      entries_.splice(entries_.begin(), entries_, it);
      return entries_.front().second;
    }
  return nullptr;
}

std::vector<std::string> DesignCache::put(
    const std::string& name, std::shared_ptr<ResidentDesign> design) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = entries_.begin(); it != entries_.end(); ++it)
    if (it->first == name) {
      entries_.erase(it);
      break;
    }
  entries_.emplace_front(name, std::move(design));
  std::vector<std::string> evicted;
  while (capacity_ > 0 && entries_.size() > capacity_) {
    evicted.push_back(entries_.back().first);
    entries_.pop_back();
  }
  return evicted;
}

void DesignCache::erase(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = entries_.begin(); it != entries_.end(); ++it)
    if (it->first == name) {
      entries_.erase(it);
      return;
    }
}

std::vector<std::string> DesignCache::names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const Entry& entry : entries_) out.push_back(entry.first);
  return out;
}

std::size_t DesignCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace mebl::serve
