#pragma once

// Routed-state serialization (DESIGN.md §12): the persistent form of a
// routed design — everything a ResidentDesign needs to resume incremental
// (ECO) rerouting in a later process, plus an integrity section.
//
// Plain-text format ("mebl_routed 1"), whitespace-separated like the MEBL1
// design format it embeds:
//
//   mebl_routed 1
//   design <nbytes>\n<MEBL1 text, exactly nbytes bytes>
//   paths <n>            one `p` record per global tile path
//   runs <n>             one `r` record per RoutePlan run
//   path_runs <n>        one `q` record per path: its run indices
//   subnets <n>          one `s` record per subnet: routed flag, method,
//                        committed grid nodes
//   detail_totals ...    the DetailedResult stage counters
//   global_totals ...    wirelength + overflow aggregates
//   demand_h/_v/_vertex  the committed global demand arrays — the
//                        integrity check: a loader reseeds a RoutingGraph
//                        from the paths and must reproduce these exactly,
//                        or the file is rejected as inconsistent
//   end
//
// The writer emits fields in deterministic order, so saving the same state
// twice produces identical bytes.

#include <iosfwd>
#include <optional>
#include <string>

#include "assign/panel.hpp"
#include "detail/detailed_router.hpp"
#include "global/global_router.hpp"
#include "netlist/io.hpp"

namespace mebl::serve {

/// The serialized view of a routed design: the design itself plus the
/// three per-stage artifacts that carry routed state. (Metrics and demand
/// are derived: metrics recompute from the occupancy, demand reseeds from
/// the paths.)
struct RoutedState {
  netlist::Design design;
  global::GlobalResult global;
  assign::RoutePlan plan;
  detail::DetailedResult detail;
};

/// Serialize `state`, reading the committed demand arrays for the
/// integrity section from `graph` (which must carry exactly the demand of
/// state.global — the resident router's graph).
void write_routed_state(std::ostream& out, const RoutedState& state,
                        const global::RoutingGraph& graph);

/// Parse a routed-state document; std::nullopt on malformed input (the
/// reason is reported through util::log_warn). The demand integrity
/// section is parsed and checked by verify_demand — callers reseed a
/// RoutingGraph from the returned paths and hand it back.
struct LoadedState {
  RoutedState state;
  std::vector<int> h_demand, v_demand, vertex_demand;  ///< saved arrays
};

[[nodiscard]] std::optional<LoadedState> read_routed_state(std::istream& in);

/// True iff `graph`'s demand arrays equal the saved ones — the load-time
/// integrity check that the paths and the demand agree.
[[nodiscard]] bool verify_demand(const LoadedState& loaded,
                                 const global::RoutingGraph& graph);

bool save_routed_state(const std::string& path, const RoutedState& state,
                       const global::RoutingGraph& graph);
[[nodiscard]] std::optional<LoadedState> load_routed_state(
    const std::string& path);

}  // namespace mebl::serve
