#include "serve/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/log.hpp"

namespace mebl::serve {

Client::~Client() { disconnect(); }

bool Client::connect(const std::string& socket_path) {
  disconnect();
  if (socket_path.empty() ||
      socket_path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    util::log_warn() << "serve client: bad socket path '" << socket_path
                     << "'";
    return false;
  }
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) return false;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    util::log_warn() << "serve client: cannot connect to '" << socket_path
                     << "': " << std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  return true;
}

void Client::disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

std::int64_t Client::send(Request request) {
  if (fd_ < 0) return -1;
  request.id = next_id_++;
  const std::string line = encode(request);
  std::size_t sent = 0;
  while (sent < line.size()) {
    const ssize_t n = ::send(fd_, line.data() + sent, line.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      disconnect();
      return -1;
    }
    sent += static_cast<std::size_t>(n);
  }
  return request.id;
}

std::vector<std::int64_t> Client::send_batch(std::vector<Request> requests) {
  std::vector<std::int64_t> ids;
  if (fd_ < 0 || requests.empty()) return ids;
  std::string lines;
  ids.reserve(requests.size());
  for (Request& request : requests) {
    request.id = next_id_++;
    ids.push_back(request.id);
    lines += encode(request);
  }
  std::size_t sent = 0;
  while (sent < lines.size()) {
    const ssize_t n = ::send(fd_, lines.data() + sent, lines.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      disconnect();
      return {};
    }
    sent += static_cast<std::size_t>(n);
  }
  return ids;
}

std::optional<Response> Client::receive() {
  if (fd_ < 0) return std::nullopt;
  char chunk[1 << 14];
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      const std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      if (line.empty()) continue;
      std::optional<Response> response = decode_response(line);
      if (!response) {
        util::log_warn() << "serve client: malformed server line";
        disconnect();
      }
      return response;
    }
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      disconnect();
      return std::nullopt;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

std::optional<Response> Client::call(Request request,
                                     const ProgressFn& progress) {
  // Inline ops (ping / status / cancel / metrics / dump) terminate with
  // their ack; queued ops ack first and terminate with done / cancelled /
  // error.
  const bool ack_terminal =
      request.op == Op::kPing || request.op == Op::kStatus ||
      request.op == Op::kCancel || request.op == Op::kMetrics ||
      request.op == Op::kDump;
  const std::int64_t id = send(std::move(request));
  if (id < 0) return std::nullopt;
  for (;;) {
    std::optional<Response> response = receive();
    if (!response) return std::nullopt;
    const bool terminal =
        response->type == "done" || response->type == "error" ||
        response->type == "cancelled" ||
        (ack_terminal && response->type == "ack");
    if (response->id == id && terminal) return response;
    if (progress) progress(*response);
  }
}

}  // namespace mebl::serve
