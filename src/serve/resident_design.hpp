#pragma once

// mebl::serve resident design — a routed design kept alive in memory for
// incremental (ECO) rerouting (DESIGN.md §12).
//
// After a full route (or a routed-state load) the resident holds the
// routing pipeline's live state: the occupancy grid, a GlobalRouter whose
// graph carries the committed demand of every routed path (with the
// CongestionIndex over it), and a DetailedRouter bound to the per-subnet
// geometry. An ECO then reroutes only a dirty closure instead of the whole
// design: the global closure comes from CongestionIndex (the targets plus
// every committed subnet still crossing an overflowed resource after the
// rip), layer/track assignment replans only the panels the closure
// touches, and detailed routing rips and reroutes only the affected nets
// against the untouched remainder.
//
// Bit-identity contract: the same ECO applied to a long-lived resident and
// to a resident rebuilt from the serialized pre-ECO state produces
// byte-identical canonical report quality blocks, because both run the
// identical index-ordered schedules on identical state. EcoRequest::verify
// runs exactly that check.

#include <iosfwd>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/stitch_router.hpp"
#include "report/report.hpp"
#include "serve/protocol.hpp"
#include "serve/routed_state.hpp"

namespace mebl::serve {

/// One incremental-reroute request against a resident design.
struct EcoRequest {
  /// Nets to reroute, by id and/or by name (resolved against the resident
  /// netlist; unknown names are an error).
  std::vector<netlist::NetId> nets;
  std::vector<std::string> net_names;
  /// Optional pin move: relocate this pin to `move_to` and reroute its net
  /// (plus any net whose wires occupy the destination). -1 = none.
  netlist::PinId move_pin = -1;
  geom::Point move_to;
  /// Additional pin moves, applied in order after move_pin. Later moves see
  /// the positions earlier ones produced, so a batched (coalesced) ECO
  /// replays exactly like its member requests run back to back.
  std::vector<PinMoveSpec> pin_moves;
  /// Run the bit-identity check: replay the same ECO on a resident rebuilt
  /// from the serialized pre-ECO state and compare canonical quality
  /// blocks byte for byte.
  bool verify = false;
  /// When the global dirty closure exceeds this fraction of all subnets,
  /// incremental rerouting stops paying for itself; fall back to a
  /// full-batch reroute of the whole design.
  double full_fallback_fraction = 0.5;
};

/// What one ECO (or full route) produced.
struct EcoOutcome {
  bool ok = false;
  std::string error;  ///< set when !ok
  report::RunReport report;
  /// The global dirty closure size (0 for full routes / full fallback).
  std::size_t dirty_subnets = 0;
  /// The ECO exceeded full_fallback_fraction and re-routed everything.
  bool fallback_full = false;
  /// verify was requested, ran, and the canonical quality blocks matched.
  bool verified = false;
  /// verify was requested and the blocks differed (a determinism bug).
  bool verify_mismatch = false;
  bool cancelled = false;
  exec::StopReason stop_reason = exec::StopReason::kNone;
  /// Wall time of the incremental work itself (excludes the verify
  /// replay), the number the <25%-of-full-route acceptance gate reads.
  double seconds = 0.0;
};

/// The canonical quality block of a run report: the design / quality /
/// heatmaps / nets members of the canonical (timing-free) serialization,
/// as deterministic bytes. Two runs that routed identically compare equal
/// here even when their counters or wall times differ.
[[nodiscard]] std::string canonical_quality_block(
    const report::RunReport& report);

class ResidentDesign {
 public:
  explicit ResidentDesign(
      netlist::Design design,
      core::RouterConfig config = core::RouterConfig::stitch_aware());

  // The routers hold pointers into the members; the resident is pinned.
  ResidentDesign(const ResidentDesign&) = delete;
  ResidentDesign& operator=(const ResidentDesign&) = delete;

  /// Rebuild a resident from a routed-state document: parse, reseed the
  /// global demand from the paths and verify it against the saved arrays,
  /// re-claim the detailed geometry onto a fresh grid (rejecting
  /// conflicting claims), recompute metrics. nullptr on any inconsistency.
  [[nodiscard]] static std::unique_ptr<ResidentDesign> from_state(
      std::istream& in,
      core::RouterConfig config = core::RouterConfig::stitch_aware());

  /// Full route through the ordinary pipeline, then make the result
  /// resident. `pool`/`cancel` are the service's shared executor and the
  /// job's token (null = private pool / no external cancel); `observer`
  /// additionally sees the run's progress callbacks.
  EcoOutcome route_full(exec::ThreadPool* pool = nullptr,
                        exec::Cancellation* cancel = nullptr,
                        core::ProgressObserver* observer = nullptr);

  /// Incremental reroute; requires a routed() resident. See EcoRequest.
  EcoOutcome eco(const EcoRequest& request, exec::ThreadPool* pool = nullptr,
                 exec::Cancellation* cancel = nullptr);

  /// Serialize the resident routed state (see routed_state.hpp).
  bool save_state(std::ostream& out) const;
  bool save_state(const std::string& path) const;

  [[nodiscard]] bool routed() const noexcept { return routed_; }
  [[nodiscard]] const netlist::Design& design() const noexcept {
    return design_;
  }
  [[nodiscard]] const core::RoutingResult& result() const noexcept {
    return result_;
  }
  [[nodiscard]] const std::vector<netlist::Subnet>& subnets() const noexcept {
    return subnets_;
  }

 private:
  /// Point the resident routers at result_: seed the global graph from the
  /// routed paths, claim pins + geometry on the grid.
  void adopt_residency();

  /// Resolve ids + names into a sorted unique net list; empty + error set
  /// on failure.
  [[nodiscard]] std::vector<netlist::NetId> resolve_nets(
      const EcoRequest& request, std::string& error) const;

  netlist::Design design_;
  core::RouterConfig config_;
  std::vector<netlist::Subnet> subnets_;
  core::RoutingResult result_;
  std::unique_ptr<global::GlobalRouter> global_;
  std::unique_ptr<detail::DetailedRouter> detailed_;
  bool routed_ = false;
};

/// Name -> resident design cache with least-recently-used eviction, the
/// server's working set. Thread-safe (the I/O thread reads names() for
/// status while the dispatcher routes).
class DesignCache {
 public:
  explicit DesignCache(std::size_t capacity) : capacity_(capacity) {}

  /// Look up and touch (move to most-recently-used). nullptr when absent.
  [[nodiscard]] std::shared_ptr<ResidentDesign> get(const std::string& name);

  /// Insert or replace; evicts the least-recently-used entries beyond
  /// capacity. Returns the names evicted.
  std::vector<std::string> put(const std::string& name,
                               std::shared_ptr<ResidentDesign> design);

  void erase(const std::string& name);
  [[nodiscard]] std::vector<std::string> names() const;  ///< MRU first
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  using Entry = std::pair<std::string, std::shared_ptr<ResidentDesign>>;
  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::list<Entry> entries_;  ///< front = most recently used
};

}  // namespace mebl::serve
