#pragma once

// mebl::serve job queue — the multiplexing point between client
// connections and the routing worker (DESIGN.md §12).
//
// Jobs are ordered by (priority descending, arrival ascending): a
// monotonically increasing push sequence breaks priority ties, so equal
// priorities run strictly FIFO. Every job carries a shared Cancellation
// token that is registered under (client, request id) for the job's whole
// lifetime — from push until finish() — so a cancel request can stop a job
// whether it is still queued or already running, and a deadline (measured
// from enqueue, so queue wait counts against the budget) trips the token
// lazily through Cancellation's deadline check.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>

#include "exec/cancellation.hpp"
#include "serve/protocol.hpp"

namespace mebl::serve {

/// One queued unit of work: a request plus its cancellation token and the
/// connection it came from (`client` is an opaque token, the fd in the
/// socket server).
struct Job {
  std::uint64_t sequence = 0;  ///< push order, the FIFO tie-break
  std::uint64_t client = 0;
  /// telemetry::now_ns() at push; the dispatcher turns it into the
  /// serve.queue_wait span and the serve.queue.wait_ns histogram sample.
  std::uint64_t enqueue_ns = 0;
  Request request;
  std::shared_ptr<exec::Cancellation> cancel;
};

class JobQueue {
 public:
  /// Enqueue a job for `client`. Creates the job's Cancellation token,
  /// arms its deadline from request.deadline_seconds (measured from now),
  /// registers it under (client, request.id) for cancel(), and wakes one
  /// pop()per. False (nothing enqueued) once the queue is closed.
  bool push(std::uint64_t client, Request request);

  /// Block until a job is available or the queue is closed; highest
  /// priority first, FIFO within a priority. std::nullopt after close()
  /// once the queue has drained.
  [[nodiscard]] std::optional<Job> pop();

  /// Non-blocking: pop the current head job only if `matches` accepts it.
  /// The dispatcher's ECO coalescer uses this to drain consecutive
  /// same-design ECOs — it never reorders past a non-matching head, so
  /// batching cannot change the order any single design observes.
  [[nodiscard]] std::optional<Job> pop_head_if(
      const std::function<bool(const Job&)>& matches);

  /// Request-stop the token registered under (client, id) — queued or
  /// running. Returns false when no such live job exists.
  bool cancel(std::uint64_t client, std::int64_t id,
              exec::StopReason reason = exec::StopReason::kUser);

  /// Cancel every live job of one client (connection teardown).
  void cancel_client(std::uint64_t client);

  /// Drop the (client, id) cancel registration once the job has finished.
  void finish(std::uint64_t client, std::int64_t id);

  /// Wake all poppers; pop() returns std::nullopt once the queue is empty.
  void close();

  [[nodiscard]] std::size_t pending() const;
  [[nodiscard]] bool closed() const;

 private:
  /// Ordering key: smaller runs first. Priority is negated so higher
  /// priorities sort first; the sequence breaks ties FIFO.
  using Key = std::pair<int, std::uint64_t>;

  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::map<Key, Job> queue_;
  std::map<std::pair<std::uint64_t, std::int64_t>,
           std::shared_ptr<exec::Cancellation>>
      live_;
  std::uint64_t next_sequence_ = 0;
  bool closed_ = false;
};

}  // namespace mebl::serve
