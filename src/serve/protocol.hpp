#pragma once

// mebl::serve wire protocol — line-delimited JSON over a local stream
// socket (DESIGN.md §12).
//
// Every message is one JSON object on one line, terminated by '\n'. The
// request/response structs below are the typed view; the codec round-trips
// them through report::Json, so the wire form inherits the reporting
// layer's determinism (name-sorted members, kind-stable numbers). The
// compact one-line dump exists because Json::dump pretty-prints; parsing
// accepts either form.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "geom/point.hpp"
#include "netlist/netlist.hpp"
#include "report/json.hpp"

namespace mebl::serve {

/// Operations a client can request. kPing / kStatus / kCancel / kMetrics /
/// kDump are answered inline by the I/O thread; everything else becomes a
/// queued job.
enum class Op : std::uint8_t {
  kPing,       ///< liveness probe, answered with an ack
  kLoad,       ///< register a design (inline MEBL1 text or file path)
  kRoute,      ///< full route of a resident design
  kEco,        ///< incremental reroute of listed nets / one pin move
  kCancel,     ///< cancel a queued or running job by request id
  kStatus,     ///< queue depth, resident designs, jobs completed
  kSaveState,  ///< write a resident design's routed state to a file
  kLoadState,  ///< make a design resident from a routed-state file
  kShutdown,   ///< drain and stop the server
  kMetrics,    ///< Prometheus text exposition of the telemetry registry
  kDump,       ///< write a flight-recorder dump (`path` overrides the default)
};

[[nodiscard]] const char* op_name(Op op) noexcept;
[[nodiscard]] std::optional<Op> op_from_name(std::string_view name) noexcept;

/// One pin relocation inside an ECO: move `pin` to `to`. A request may
/// carry several, applied in order (later moves see the positions earlier
/// ones produced); the legacy single move_pin/move_to pair remains as the
/// one-move shorthand and is applied first.
struct PinMoveSpec {
  netlist::PinId pin = -1;
  geom::Point to;

  friend bool operator==(const PinMoveSpec& a, const PinMoveSpec& b) {
    return a.pin == b.pin && a.to == b.to;
  }
};

/// One client request. Fields beyond `op` and `id` are op-specific; unused
/// fields stay at their defaults and are omitted from the wire form.
struct Request {
  Op op = Op::kPing;
  /// Client-chosen correlation id; every response to this request echoes
  /// it. Ids are scoped per connection.
  std::int64_t id = 0;
  /// Resident-design key (kLoad names it; kRoute/kEco/kSaveState/
  /// kLoadState look it up).
  std::string design;
  /// Inline MEBL1 design text (kLoad), alternative to `path`.
  std::string design_text;
  /// File path: the design file (kLoad) or the routed-state file
  /// (kSaveState / kLoadState).
  std::string path;
  /// Queue priority; higher runs first, FIFO within a priority.
  int priority = 0;
  /// Wall-clock budget for the job measured from enqueue; 0 = none. On
  /// expiry the job stops with StopReason::kDeadline.
  double deadline_seconds = 0.0;
  /// kEco: nets to reroute, by id and/or by name (names are resolved
  /// against the resident design's netlist).
  std::vector<netlist::NetId> nets;
  std::vector<std::string> net_names;
  /// kEco: optional pin move (pin id -> new location). -1 = none.
  netlist::PinId move_pin = -1;
  geom::Point move_to;
  /// kEco: additional pin moves, applied in order after move_pin. The
  /// coalescing dispatcher also uses this to union the moves of batched
  /// ECO requests.
  std::vector<PinMoveSpec> moves;
  /// kEco: run the bit-identity check — replay the same ECO on a resident
  /// rebuilt from the serialized pre-ECO state and compare canonical
  /// report quality blocks byte for byte.
  bool verify = false;
  /// kCancel: the request id of the job to cancel.
  std::int64_t cancel_id = -1;
};

/// One server message. `type` is "ack", "progress", "done", "cancelled" or
/// "error"; `payload` carries the op-specific body (a RunReport JSON for
/// route/eco "done" messages, queue statistics for status, ...).
struct Response {
  std::string type;
  std::int64_t id = 0;
  std::string error;  ///< set when type == "error"
  report::Json payload;
};

[[nodiscard]] report::Json to_json(const Request& request);
[[nodiscard]] report::Json to_json(const Response& response);
[[nodiscard]] std::optional<Request> parse_request(const report::Json& json);
[[nodiscard]] std::optional<Response> parse_response(const report::Json& json);

/// Compact single-line JSON dump (no newlines anywhere), the wire form.
[[nodiscard]] std::string dump_line(const report::Json& json);

/// Encode a message as one wire line including the trailing '\n'.
[[nodiscard]] std::string encode(const Request& request);
[[nodiscard]] std::string encode(const Response& response);

/// Parse one wire line (with or without the trailing '\n').
[[nodiscard]] std::optional<Request> decode_request(std::string_view line);
[[nodiscard]] std::optional<Response> decode_response(std::string_view line);

}  // namespace mebl::serve
