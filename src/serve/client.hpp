#pragma once

// mebl::serve client — a blocking line-protocol connection to a running
// mebl_serve daemon. One instance is one AF_UNIX connection; request ids
// auto-increment per connection, and call() hides the streamed progress
// lines (optionally forwarding them) and returns the terminal response
// (done / cancelled / error) for the request.

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "serve/protocol.hpp"

namespace mebl::serve {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connect to the daemon's socket. False (with errno in the log) when
  /// the daemon is not there.
  bool connect(const std::string& socket_path);
  void disconnect();
  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

  /// Send one request (assigning the next request id; request.id is
  /// overwritten) and read responses until the terminal one for that id
  /// arrives. Progress lines and the enqueue ack are passed to `progress`
  /// when set, dropped otherwise. std::nullopt on connection loss or a
  /// malformed server line.
  using ProgressFn = std::function<void(const Response&)>;
  [[nodiscard]] std::optional<Response> call(Request request,
                                             const ProgressFn& progress = {});

  /// Fire-and-collect-ack send for requests whose terminal response the
  /// caller reads later (or never, e.g. cancel). Returns the assigned id,
  /// or -1 on send failure.
  std::int64_t send(Request request);

  /// Pipeline several requests in one socket write: ids assign in order
  /// and the server enqueues the jobs consecutively (no other client's
  /// lines in between), which is what lets a burst of same-design ECOs
  /// coalesce into one batch. Returns the assigned ids, empty on failure.
  std::vector<std::int64_t> send_batch(std::vector<Request> requests);

  /// Read the next response line (any id), blocking. std::nullopt on
  /// connection loss or malformed data.
  [[nodiscard]] std::optional<Response> receive();

 private:
  int fd_ = -1;
  std::int64_t next_id_ = 1;
  std::string buffer_;  ///< received bytes not yet split into lines
};

}  // namespace mebl::serve
