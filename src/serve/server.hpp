#pragma once

// mebl::serve socket server — the routing-as-a-service daemon core
// (DESIGN.md §12, §16).
//
// One poll()-driven I/O thread owns the AF_UNIX listening socket and every
// client connection: it splits the byte stream into wire lines, answers
// ping / status / cancel / metrics / dump inline, and pushes everything
// else onto the LaneScheduler. N dispatch lanes (one thread + one router
// ThreadPool each) pop jobs in (priority, arrival) order; a job's design
// key hashes to exactly one lane, so every resident design keeps a single
// mutator thread — the one-writer-per-resident invariant the bit-identity
// contract needs — while jobs for different designs route concurrently.
// Consecutive queued ECOs for the same design coalesce into one batched
// rip-up/reroute whose responses fan back out per request. Responses
// (acks, streamed progress events, the final done/error line) can be
// written from any thread; a write mutex keeps lines whole.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "serve/lane_scheduler.hpp"
#include "serve/resident_design.hpp"

namespace mebl::exec {
class ThreadPool;
}  // namespace mebl::exec

namespace mebl::serve {

struct ServerConfig {
  /// AF_UNIX socket path; bound on start(), unlinked on stop().
  std::string socket_path;
  /// Router pool threads split across the lanes (each lane gets
  /// max(1, threads / lanes) workers); <= 0 = hardware concurrency.
  int threads = 0;
  /// Dispatch lanes (see LaneScheduler); <= 0 = hardware concurrency / 2,
  /// floored at 1. One lane reproduces the single-dispatcher behavior.
  int lanes = 0;
  /// Resident designs kept in memory (LRU beyond this).
  std::size_t cache_capacity = 4;
  /// Pipeline configuration every job routes with.
  core::RouterConfig router = core::RouterConfig::stitch_aware();
  /// Jobs running at least this many seconds emit one structured WARN line
  /// with their per-stage breakdown (DESIGN.md §14). 0 disables.
  double slow_job_seconds = 0.0;
  /// Path prefix for flight-recorder dumps written by kDump requests that
  /// carry no explicit path; the daemon points this into --flight-dir.
  std::string flight_prefix = "mebl_flight";
};

class Server {
 public:
  explicit Server(ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen on the socket and start the I/O and lane threads.
  /// False (with a log line) when the socket cannot be bound.
  bool start();

  /// Close the lanes, stop every thread, drop every connection, unlink the
  /// socket. Idempotent; also run by the destructor.
  void stop();

  /// Block until the server stops (a shutdown request or stop()).
  void wait();

  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }
  /// True once a shutdown request (or stop()) has been seen; the daemon
  /// main polls this from its signal loop.
  [[nodiscard]] bool stopping() const noexcept {
    return stopping_.load(std::memory_order_acquire);
  }
  [[nodiscard]] const std::string& socket_path() const noexcept {
    return config_.socket_path;
  }
  [[nodiscard]] std::size_t lanes() const noexcept {
    return scheduler_.lanes();
  }
  [[nodiscard]] std::uint64_t jobs_completed() const noexcept {
    return jobs_completed_.load(std::memory_order_acquire);
  }

 private:
  struct Connection {
    int fd = -1;
    std::string buffer;  ///< bytes received, not yet newline-terminated
  };

  /// Point-in-time lane statistics, exported as labeled Prometheus gauges.
  struct LaneStats {
    std::atomic<std::uint64_t> jobs{0};  ///< jobs this lane completed
    std::atomic<bool> busy{false};       ///< a job is executing right now
  };

  void io_loop();
  void dispatch_loop(std::size_t lane);

  /// Parse + act on one wire line from `client` (inline ops answer here,
  /// the rest queue).
  void handle_line(std::uint64_t client, std::string_view line);

  /// Execute one queued job on its lane thread and send its responses.
  void execute(const Job& job, std::size_t lane);
  /// Execute a coalesced batch of ECO jobs (>= 1, all for one design) as a
  /// single merged rip-up/reroute; fan the responses back out per member.
  void execute_eco_batch(std::vector<Job>& batch, std::size_t lane);
  [[nodiscard]] Response run_load(const Job& job);
  [[nodiscard]] Response run_route(const Job& job, std::size_t lane);
  [[nodiscard]] Response run_save_state(const Job& job);
  [[nodiscard]] Response run_load_state(const Job& job);

  [[nodiscard]] report::Json status_payload() const;

  /// Prometheus text exposition: the full telemetry registry plus serve
  /// gauges (per-lane depth/busy/jobs, in-flight jobs, cache occupancy,
  /// connections).
  [[nodiscard]] std::string metrics_text() const;

  /// Slow-job structured WARN line (op, client, wait/run seconds, stage
  /// breakdown pulled from the response's report).
  void log_slow_job(const Job& job, const Response& response,
                    double wait_seconds, double run_seconds) const;

  /// Write one response line to the client; silently drops it when the
  /// connection is gone (disconnected mid-job).
  void send_response(std::uint64_t client, const Response& response);
  void drop_connection(std::uint64_t client);
  void wake_io();

  ServerConfig config_;
  LaneScheduler scheduler_;
  DesignCache cache_;
  /// One router pool per lane so lanes overlap their parallel_for calls
  /// (a single pool serializes cross-thread submissions).
  std::vector<std::unique_ptr<exec::ThreadPool>> lane_pools_;
  std::vector<std::unique_ptr<LaneStats>> lane_stats_;

  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  ///< self-pipe: poke the poll() loop

  mutable std::mutex conn_mutex_;
  std::map<std::uint64_t, Connection> connections_;
  std::mutex write_mutex_;

  std::thread io_thread_;
  std::vector<std::thread> lane_threads_;
  std::atomic<int> lanes_live_{0};
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> jobs_completed_{0};
  std::atomic<std::int64_t> jobs_inflight_{0};
  std::mutex stopped_mutex_;
  std::condition_variable stopped_cv_;
};

/// The lane count `config` resolves to: config.lanes when positive, else
/// hardware concurrency / 2 floored at 1.
[[nodiscard]] std::size_t resolve_lanes(const ServerConfig& config) noexcept;

}  // namespace mebl::serve
