#include "serve/server.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "exec/thread_pool.hpp"
#include "netlist/io.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/keys.hpp"
#include "telemetry/prometheus.hpp"
#include "telemetry/telemetry.hpp"
#include "util/log.hpp"

namespace mebl::serve {
namespace {

namespace keys = telemetry::keys;

/// One streamed "progress" line per pipeline stage boundary / global-stage
/// net batch, written from the job's lane thread while the router runs.
class ProgressSender final : public core::ProgressObserver {
 public:
  using SendFn = std::function<void(const Response&)>;
  ProgressSender(std::int64_t id, SendFn send)
      : id_(id), send_(std::move(send)) {}

  void on_stage_begin(core::Stage stage) override {
    Response event;
    event.type = "progress";
    event.id = id_;
    event.payload["event"] = "stage_begin";
    event.payload["stage"] = core::stage_name(stage);
    send_(event);
  }

  void on_stage_end(core::Stage stage, double seconds) override {
    Response event;
    event.type = "progress";
    event.id = id_;
    event.payload["event"] = "stage_end";
    event.payload["stage"] = core::stage_name(stage);
    event.payload["seconds"] = seconds;
    send_(event);
  }

  void on_nets_routed(std::size_t routed, std::size_t total) override {
    Response event;
    event.type = "progress";
    event.id = id_;
    event.payload["event"] = "nets_routed";
    event.payload["routed"] = static_cast<std::int64_t>(routed);
    event.payload["total"] = static_cast<std::int64_t>(total);
    send_(event);
  }

 private:
  std::int64_t id_;
  SendFn send_;
};

Response make_error(std::int64_t id, std::string message) {
  Response response;
  response.type = "error";
  response.id = id;
  response.error = std::move(message);
  return response;
}

/// The cancelled / deadline-exceeded terminal response for a stopped job:
/// user cancels get a "cancelled" line, expired deadlines an "error" with
/// the machine-parseable code "deadline_exceeded" in the payload.
Response make_stopped(std::int64_t id, exec::StopReason reason) {
  if (reason == exec::StopReason::kDeadline) {
    Response response = make_error(id, "deadline exceeded");
    response.payload["code"] = "deadline_exceeded";
    return response;
  }
  Response response;
  response.type = "cancelled";
  response.id = id;
  return response;
}

}  // namespace

std::size_t resolve_lanes(const ServerConfig& config) noexcept {
  if (config.lanes > 0) return static_cast<std::size_t>(config.lanes);
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware > 1 ? static_cast<std::size_t>(hardware / 2) : 1;
}

Server::Server(ServerConfig config)
    : config_(std::move(config)),
      scheduler_(resolve_lanes(config_)),
      cache_(config_.cache_capacity) {}

Server::~Server() { stop(); }

bool Server::start() {
  if (running_.load(std::memory_order_acquire)) return true;
  if (config_.socket_path.empty() ||
      config_.socket_path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    util::log_warn() << "serve: bad socket path '" << config_.socket_path
                     << "'";
    return false;
  }

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    util::log_warn() << "serve: socket(): " << std::strerror(errno);
    return false;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, config_.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  ::unlink(config_.socket_path.c_str());  // stale socket from a dead server
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    util::log_warn() << "serve: cannot listen on '" << config_.socket_path
                     << "': " << std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::pipe(wake_fds_) != 0) {
    util::log_warn() << "serve: pipe(): " << std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  // The poll loop drains the pipe until EAGAIN; the read end must not block.
  ::fcntl(wake_fds_[0], F_SETFL,
          ::fcntl(wake_fds_[0], F_GETFL, 0) | O_NONBLOCK);

  // One router pool per lane: ThreadPool serializes parallel_for calls from
  // different threads, so concurrent lanes each need their own workers. The
  // thread budget splits evenly; every lane gets at least one worker.
  const std::size_t lanes = scheduler_.lanes();
  const int total_threads = config_.threads > 0
                                ? config_.threads
                                : exec::ThreadPool::hardware_threads();
  const int per_lane = std::max(1, total_threads / static_cast<int>(lanes));
  for (std::size_t i = 0; i < lanes; ++i) {
    lane_pools_.push_back(std::make_unique<exec::ThreadPool>(per_lane));
    lane_stats_.push_back(std::make_unique<LaneStats>());
  }

  lanes_live_.store(static_cast<int>(lanes), std::memory_order_release);
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  io_thread_ = std::thread([this] { io_loop(); });
  lane_threads_.reserve(lanes);
  for (std::size_t i = 0; i < lanes; ++i)
    lane_threads_.emplace_back([this, i] { dispatch_loop(i); });
  return true;
}

void Server::stop() {
  if (listen_fd_ < 0 && !io_thread_.joinable() && lane_threads_.empty())
    return;
  stopping_.store(true, std::memory_order_release);
  scheduler_.close();
  wake_io();
  if (io_thread_.joinable()) io_thread_.join();
  for (std::thread& lane : lane_threads_)
    if (lane.joinable()) lane.join();
  lane_threads_.clear();
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    for (auto& [client, conn] : connections_) ::close(conn.fd);
    connections_.clear();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(config_.socket_path.c_str());
  }
  for (int& fd : wake_fds_)
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  lane_pools_.clear();
  running_.store(false, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(stopped_mutex_);
  }
  stopped_cv_.notify_all();
}

void Server::wait() {
  std::unique_lock<std::mutex> lock(stopped_mutex_);
  stopped_cv_.wait(lock, [this] {
    return !running_.load(std::memory_order_acquire) ||
           stopping_.load(std::memory_order_acquire);
  });
}

void Server::wake_io() {
  if (wake_fds_[1] >= 0) {
    const char byte = 'w';
    [[maybe_unused]] const ssize_t n = ::write(wake_fds_[1], &byte, 1);
  }
}

void Server::io_loop() {
  std::string read_buffer(1 << 16, '\0');
  while (!stopping_.load(std::memory_order_acquire)) {
    std::vector<pollfd> fds;
    std::vector<std::uint64_t> clients;
    fds.push_back({listen_fd_, POLLIN, 0});
    fds.push_back({wake_fds_[0], POLLIN, 0});
    {
      std::lock_guard<std::mutex> lock(conn_mutex_);
      for (const auto& [client, conn] : connections_) {
        fds.push_back({conn.fd, POLLIN, 0});
        clients.push_back(client);
      }
    }
    if (::poll(fds.data(), fds.size(), /*timeout_ms=*/500) < 0) {
      if (errno == EINTR) continue;
      util::log_warn() << "serve: poll(): " << std::strerror(errno);
      break;
    }
    if ((fds[1].revents & POLLIN) != 0) {
      char drain[64];
      while (::read(wake_fds_[0], drain, sizeof(drain)) > 0) {
      }
    }
    if ((fds[0].revents & POLLIN) != 0) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd >= 0) {
        std::lock_guard<std::mutex> lock(conn_mutex_);
        connections_[static_cast<std::uint64_t>(fd)] = Connection{fd, {}};
      }
    }
    for (std::size_t i = 2; i < fds.size(); ++i) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      const std::uint64_t client = clients[i - 2];
      const ssize_t n =
          ::read(fds[i].fd, read_buffer.data(), read_buffer.size());
      if (n <= 0) {
        scheduler_.cancel_client(client);
        drop_connection(client);
        continue;
      }
      // Take the lines out of the connection buffer, then handle them
      // without the lock (handlers may push jobs or write responses).
      std::vector<std::string> lines;
      {
        std::lock_guard<std::mutex> lock(conn_mutex_);
        auto it = connections_.find(client);
        if (it == connections_.end()) continue;
        it->second.buffer.append(read_buffer.data(),
                                 static_cast<std::size_t>(n));
        std::size_t start = 0;
        for (std::size_t nl = it->second.buffer.find('\n');
             nl != std::string::npos;
             nl = it->second.buffer.find('\n', start)) {
          lines.push_back(it->second.buffer.substr(start, nl - start));
          start = nl + 1;
        }
        it->second.buffer.erase(0, start);
      }
      for (const std::string& line : lines) handle_line(client, line);
    }
  }
}

void Server::handle_line(std::uint64_t client, std::string_view line) {
  if (line.empty()) return;
  const std::optional<Request> request = decode_request(line);
  if (!request) {
    telemetry::counter(keys::kServeMalformed).add(1);
    send_response(client, make_error(0, "malformed request"));
    return;
  }
  telemetry::counter(keys::kServeRequests).add(1);
  switch (request->op) {
    case Op::kPing: {
      Response response;
      response.type = "ack";
      response.id = request->id;
      response.payload["server"] = "mebl_serve";
      send_response(client, response);
      return;
    }
    case Op::kStatus: {
      Response response;
      response.type = "ack";
      response.id = request->id;
      response.payload = status_payload();
      send_response(client, response);
      return;
    }
    case Op::kCancel: {
      Response response;
      response.type = "ack";
      response.id = request->id;
      response.payload["cancelled"] =
          scheduler_.cancel(client, request->cancel_id);
      send_response(client, response);
      return;
    }
    case Op::kMetrics: {
      Response response;
      response.type = "ack";
      response.id = request->id;
      response.payload["content_type"] = "text/plain; version=0.0.4";
      response.payload["text"] = metrics_text();
      send_response(client, response);
      return;
    }
    case Op::kDump: {
      const std::string path =
          request->path.empty()
              ? telemetry::FlightRecorder::timestamped_path(
                    config_.flight_prefix)
              : request->path;
      if (!telemetry::FlightRecorder::dump_to_file(path)) {
        send_response(client,
                      make_error(request->id, "cannot write '" + path + "'"));
        return;
      }
      Response response;
      response.type = "ack";
      response.id = request->id;
      response.payload["path"] = path;
      response.payload["events"] = static_cast<std::int64_t>(
          telemetry::FlightRecorder::snapshot().size());
      send_response(client, response);
      return;
    }
    default: {
      const std::size_t lane = scheduler_.lane_for(request->design);
      const std::int64_t id = request->id;
      if (!scheduler_.push(client, *request)) {
        send_response(client, make_error(id, "server is shutting down"));
        return;
      }
      Response response;
      response.type = "ack";
      response.id = id;
      response.payload["queued"] = true;
      response.payload["lane"] = static_cast<std::int64_t>(lane);
      response.payload["pending"] =
          static_cast<std::int64_t>(scheduler_.pending());
      send_response(client, response);
      return;
    }
  }
}

void Server::dispatch_loop(std::size_t lane) {
  while (true) {
    std::optional<Job> job = scheduler_.pop(lane);
    if (!job) break;
    if (job->request.op == Op::kShutdown) {
      Response response;
      response.type = "done";
      response.id = job->request.id;
      response.payload["shutdown"] = true;
      send_response(job->client, response);
      scheduler_.finish(job->client, job->request.id);
      // Stop accepting new work; every lane (this one included) drains
      // what is already queued, then the last lane out finishes the stop.
      stopping_.store(true, std::memory_order_release);
      scheduler_.close();
      continue;
    }
    if (job->request.op == Op::kEco) {
      // ECO coalescing: absorb consecutive queued ECOs for the same
      // design into one batched apply. pop_head_if never skips past a
      // non-matching head, so per-design order is untouched.
      std::vector<Job> batch;
      const std::string design = job->request.design;
      batch.push_back(std::move(*job));
      while (std::optional<Job> next =
                 scheduler_.pop_head_if(lane, [&design](const Job& queued) {
                   return queued.request.op == Op::kEco &&
                          queued.request.design == design;
                 }))
        batch.push_back(std::move(*next));
      execute_eco_batch(batch, lane);
      continue;
    }
    execute(*job, lane);
  }
  // Drain-and-stop: the last lane to exit tells the I/O loop and wait()ers.
  if (lanes_live_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    stopping_.store(true, std::memory_order_release);
    scheduler_.close();
    wake_io();
    {
      std::lock_guard<std::mutex> lock(stopped_mutex_);
    }
    stopped_cv_.notify_all();
  }
}

void Server::execute(const Job& job, std::size_t lane) {
  // Request-scoped tracing: the tag is thread-local and the exec pool hands
  // it down to its workers, so every span recorded for this job — on this
  // lane thread or inside the router stages — carries this request id even
  // while other lanes run their own jobs.
  const telemetry::RequestScope request_scope(
      static_cast<std::uint64_t>(job.request.id));
  const std::uint64_t start_ns = telemetry::now_ns();
  const std::uint64_t wait_ns =
      start_ns > job.enqueue_ns ? start_ns - job.enqueue_ns : 0;
  telemetry::histogram(keys::kServeQueueWaitNs).record_ns(wait_ns);
  telemetry::Tracer::record_span("serve.queue_wait", job.enqueue_ns, wait_ns);
  jobs_inflight_.fetch_add(1, std::memory_order_relaxed);
  LaneStats& stats = *lane_stats_[lane];
  stats.busy.store(true, std::memory_order_relaxed);

  Response response;
  if (job.cancel->stop_requested()) {
    // Stopped while still queued: answer without starting any work. An
    // already-expired deadline is a structured rejection, not a start-
    // then-cancel.
    response = make_stopped(job.request.id, job.cancel->reason());
    if (job.cancel->reason() == exec::StopReason::kDeadline) {
      response.payload["rejected_before_start"] = true;
      telemetry::counter(keys::kServeDeadlineRejected).add(1);
    }
  } else {
    TELEMETRY_SPAN("serve.dispatch");
    switch (job.request.op) {
      case Op::kLoad: response = run_load(job); break;
      case Op::kRoute: response = run_route(job, lane); break;
      case Op::kSaveState: response = run_save_state(job); break;
      case Op::kLoadState: response = run_load_state(job); break;
      default:
        response = make_error(job.request.id, "unsupported operation");
        break;
    }
  }

  const std::uint64_t run_ns = telemetry::now_ns() - start_ns;
  telemetry::histogram(keys::kServeJobNs).record_ns(run_ns);
  if (job.request.op == Op::kRoute)
    telemetry::histogram(keys::kServeRouteNs).record_ns(run_ns);
  if (response.type == "error")
    telemetry::counter(keys::kServeJobsFailed).add(1);
  else if (response.type == "cancelled")
    telemetry::counter(keys::kServeJobsCancelled).add(1);
  const double run_seconds = static_cast<double>(run_ns) / 1e9;
  if (config_.slow_job_seconds > 0.0 &&
      run_seconds >= config_.slow_job_seconds) {
    telemetry::counter(keys::kServeSlowJobs).add(1);
    log_slow_job(job, response, static_cast<double>(wait_ns) / 1e9,
                 run_seconds);
  }

  stats.busy.store(false, std::memory_order_relaxed);
  stats.jobs.fetch_add(1, std::memory_order_relaxed);
  jobs_inflight_.fetch_sub(1, std::memory_order_relaxed);
  scheduler_.finish(job.client, job.request.id);
  jobs_completed_.fetch_add(1, std::memory_order_acq_rel);
  send_response(job.client, response);
}

void Server::execute_eco_batch(std::vector<Job>& batch, std::size_t lane) {
  LaneStats& stats = *lane_stats_[lane];
  const std::uint64_t start_ns = telemetry::now_ns();

  // Members stopped while queued answer individually (a deadline that
  // expired in the queue is a structured rejection); the rest merge.
  std::vector<Job*> live;
  live.reserve(batch.size());
  for (Job& member : batch) {
    const telemetry::RequestScope member_scope(
        static_cast<std::uint64_t>(member.request.id));
    const std::uint64_t wait_ns =
        start_ns > member.enqueue_ns ? start_ns - member.enqueue_ns : 0;
    telemetry::histogram(keys::kServeQueueWaitNs).record_ns(wait_ns);
    telemetry::Tracer::record_span("serve.queue_wait", member.enqueue_ns,
                                   wait_ns);
    if (!member.cancel->stop_requested()) {
      live.push_back(&member);
      continue;
    }
    Response response =
        make_stopped(member.request.id, member.cancel->reason());
    if (member.cancel->reason() == exec::StopReason::kDeadline) {
      response.payload["rejected_before_start"] = true;
      telemetry::counter(keys::kServeDeadlineRejected).add(1);
    }
    if (response.type == "error")
      telemetry::counter(keys::kServeJobsFailed).add(1);
    else
      telemetry::counter(keys::kServeJobsCancelled).add(1);
    scheduler_.finish(member.client, member.request.id);
    jobs_completed_.fetch_add(1, std::memory_order_acq_rel);
    stats.jobs.fetch_add(1, std::memory_order_relaxed);
    send_response(member.client, response);
  }
  if (live.empty()) return;

  // One merged rip-up/reroute for the whole batch: net and pin-move lists
  // union in request order (the resident dedups nets and replays moves
  // sequentially), verify is sticky, and the first member's token steers
  // cancellation. The batch runs under the leader's request tag.
  Job& leader = *live.front();
  const telemetry::RequestScope request_scope(
      static_cast<std::uint64_t>(leader.request.id));
  jobs_inflight_.fetch_add(static_cast<std::int64_t>(live.size()),
                           std::memory_order_relaxed);
  stats.busy.store(true, std::memory_order_relaxed);

  std::shared_ptr<ResidentDesign> resident =
      cache_.get(leader.request.design);
  EcoOutcome outcome;
  if (resident != nullptr) {
    EcoRequest eco;
    for (const Job* member : live) {
      const Request& request = member->request;
      eco.nets.insert(eco.nets.end(), request.nets.begin(),
                      request.nets.end());
      eco.net_names.insert(eco.net_names.end(), request.net_names.begin(),
                           request.net_names.end());
      if (request.move_pin >= 0)
        eco.pin_moves.push_back({request.move_pin, request.move_to});
      eco.pin_moves.insert(eco.pin_moves.end(), request.moves.begin(),
                           request.moves.end());
      eco.verify = eco.verify || request.verify;
    }
    telemetry::counter(keys::kServeJobsEco)
        .add(static_cast<std::int64_t>(live.size()));
    if (live.size() > 1)
      telemetry::counter(keys::kServeEcoCoalesced)
          .add(static_cast<std::int64_t>(live.size() - 1));
    {
      TELEMETRY_SPAN("serve.dispatch");
      outcome =
          resident->eco(eco, lane_pools_[lane].get(), leader.cancel.get());
    }
    if (outcome.fallback_full)
      telemetry::counter(keys::kServeEcoFallbackFull).add(1);
  }

  const std::uint64_t run_ns = telemetry::now_ns() - start_ns;
  telemetry::histogram(keys::kServeJobNs).record_ns(run_ns);
  telemetry::histogram(keys::kServeEcoNs).record_ns(run_ns);
  const double run_seconds = static_cast<double>(run_ns) / 1e9;

  // Fan the batch outcome back out: every member gets its own terminal
  // line (echoing its id) with the shared report and an eco.coalesced
  // count naming the batch size it rode in.
  for (Job* member : live) {
    const Request& request = member->request;
    Response response;
    if (resident == nullptr) {
      response =
          make_error(request.id, "unknown design '" + request.design + "'");
    } else if (outcome.cancelled) {
      response = make_stopped(request.id, outcome.stop_reason);
    } else if (!outcome.ok) {
      response = make_error(request.id, outcome.error);
    } else {
      response.type = "done";
      response.id = request.id;
      response.payload["report"] = report::to_json(outcome.report);
      response.payload["seconds"] = outcome.seconds;
      report::Json& summary = response.payload["eco"];
      summary["dirty_subnets"] =
          static_cast<std::int64_t>(outcome.dirty_subnets);
      summary["fallback_full"] = outcome.fallback_full;
      summary["coalesced"] = static_cast<std::int64_t>(live.size());
      if (request.verify) {
        summary["verified"] = outcome.verified;
        summary["verify_mismatch"] = outcome.verify_mismatch;
      }
    }
    if (response.type == "error")
      telemetry::counter(keys::kServeJobsFailed).add(1);
    else if (response.type == "cancelled")
      telemetry::counter(keys::kServeJobsCancelled).add(1);
    jobs_inflight_.fetch_sub(1, std::memory_order_relaxed);
    scheduler_.finish(member->client, request.id);
    jobs_completed_.fetch_add(1, std::memory_order_acq_rel);
    stats.jobs.fetch_add(1, std::memory_order_relaxed);
    send_response(member->client, response);
  }
  if (config_.slow_job_seconds > 0.0 &&
      run_seconds >= config_.slow_job_seconds) {
    telemetry::counter(keys::kServeSlowJobs).add(1);
    Response summary;
    summary.type = "done";
    log_slow_job(leader, summary, 0.0, run_seconds);
  }
  stats.busy.store(false, std::memory_order_relaxed);
}

Response Server::run_load(const Job& job) {
  const Request& request = job.request;
  if (request.design.empty())
    return make_error(request.id, "load needs a design name");
  std::optional<netlist::Design> design;
  if (!request.design_text.empty()) {
    std::istringstream in(request.design_text);
    design = netlist::read_design(in);
  } else if (!request.path.empty()) {
    design = netlist::load_design(request.path);
  } else {
    return make_error(request.id, "load needs design_text or path");
  }
  if (!design) return make_error(request.id, "cannot parse design");

  Response response;
  response.type = "done";
  response.id = request.id;
  response.payload["design"] = request.design;
  response.payload["nets"] =
      static_cast<std::int64_t>(design->netlist.num_nets());
  response.payload["pins"] =
      static_cast<std::int64_t>(design->netlist.num_pins());
  auto resident =
      std::make_shared<ResidentDesign>(std::move(*design), config_.router);
  const std::vector<std::string> evicted =
      cache_.put(request.design, std::move(resident));
  if (!evicted.empty()) {
    report::Json names = report::Json::array();
    for (const std::string& name : evicted) names.push_back(name);
    response.payload["evicted"] = names;
  }
  return response;
}

Response Server::run_route(const Job& job, std::size_t lane) {
  const Request& request = job.request;
  std::shared_ptr<ResidentDesign> resident = cache_.get(request.design);
  if (resident == nullptr)
    return make_error(request.id, "unknown design '" + request.design + "'");

  const std::uint64_t client = job.client;
  ProgressSender progress(request.id, [this, client](const Response& event) {
    send_response(client, event);
  });
  telemetry::counter(keys::kServeJobsRoute).add(1);
  const EcoOutcome outcome = resident->route_full(
      lane_pools_[lane].get(), job.cancel.get(), &progress);
  if (outcome.cancelled)
    return make_stopped(request.id, outcome.stop_reason);
  if (!outcome.ok) return make_error(request.id, outcome.error);

  Response response;
  response.type = "done";
  response.id = request.id;
  response.payload["report"] = report::to_json(outcome.report);
  response.payload["seconds"] = outcome.seconds;
  return response;
}

Response Server::run_save_state(const Job& job) {
  const Request& request = job.request;
  std::shared_ptr<ResidentDesign> resident = cache_.get(request.design);
  if (resident == nullptr)
    return make_error(request.id, "unknown design '" + request.design + "'");
  if (!resident->routed())
    return make_error(request.id, "design is not routed");
  if (request.path.empty())
    return make_error(request.id, "save_state needs a path");
  if (!resident->save_state(request.path))
    return make_error(request.id, "cannot write '" + request.path + "'");
  Response response;
  response.type = "done";
  response.id = request.id;
  response.payload["path"] = request.path;
  return response;
}

Response Server::run_load_state(const Job& job) {
  const Request& request = job.request;
  if (request.design.empty())
    return make_error(request.id, "load_state needs a design name");
  if (request.path.empty())
    return make_error(request.id, "load_state needs a path");
  std::ifstream in(request.path);
  if (!in)
    return make_error(request.id, "cannot read '" + request.path + "'");
  std::unique_ptr<ResidentDesign> resident =
      ResidentDesign::from_state(in, config_.router);
  if (resident == nullptr)
    return make_error(request.id,
                      "'" + request.path + "' is not a consistent state");

  Response response;
  response.type = "done";
  response.id = request.id;
  response.payload["design"] = request.design;
  response.payload["routed"] = true;
  response.payload["nets"] = static_cast<std::int64_t>(
      resident->design().netlist.num_nets());
  const std::vector<std::string> evicted =
      cache_.put(request.design, std::move(resident));
  if (!evicted.empty()) {
    report::Json names = report::Json::array();
    for (const std::string& name : evicted) names.push_back(name);
    response.payload["evicted"] = names;
  }
  return response;
}

report::Json Server::status_payload() const {
  report::Json payload = report::Json::object();
  payload["pending"] = static_cast<std::int64_t>(scheduler_.pending());
  payload["inflight"] = jobs_inflight_.load(std::memory_order_relaxed);
  payload["jobs_completed"] =
      static_cast<std::int64_t>(jobs_completed_.load(std::memory_order_acquire));
  payload["lanes"] = static_cast<std::int64_t>(scheduler_.lanes());
  payload["cache_capacity"] = static_cast<std::int64_t>(cache_.capacity());
  report::Json designs = report::Json::array();
  for (const std::string& name : cache_.names()) designs.push_back(name);
  payload["designs"] = designs;
  return payload;
}

std::string Server::metrics_text() const {
  // Counters and histograms come straight from the telemetry registry; the
  // point-in-time values below are the server's own state, rendered as
  // gauges. Per-design residency and per-lane gauges carry the design name
  // / lane index as a label.
  std::vector<telemetry::PrometheusGauge> gauges;
  gauges.push_back({"serve.queue.depth",
                    static_cast<double>(scheduler_.pending()), {}});
  gauges.push_back(
      {"serve.jobs.inflight",
       static_cast<double>(jobs_inflight_.load(std::memory_order_relaxed)),
       {}});
  gauges.push_back(
      {"serve.jobs.completed",
       static_cast<double>(jobs_completed_.load(std::memory_order_acquire)),
       {}});
  gauges.push_back({"serve.lanes", static_cast<double>(scheduler_.lanes()),
                    {}});
  for (std::size_t i = 0; i < scheduler_.lanes(); ++i) {
    const std::vector<std::pair<std::string, std::string>> label = {
        {"lane", std::to_string(i)}};
    const LaneStats& stats = *lane_stats_[i];
    gauges.push_back({"serve.lane.depth",
                      static_cast<double>(scheduler_.pending(i)), label});
    gauges.push_back(
        {"serve.lane.busy",
         stats.busy.load(std::memory_order_relaxed) ? 1.0 : 0.0, label});
    gauges.push_back(
        {"serve.lane.jobs",
         static_cast<double>(stats.jobs.load(std::memory_order_relaxed)),
         label});
  }
  const std::vector<std::string> residents = cache_.names();
  gauges.push_back(
      {"serve.cache.residents", static_cast<double>(residents.size()), {}});
  gauges.push_back(
      {"serve.cache.capacity", static_cast<double>(cache_.capacity()), {}});
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    gauges.push_back({"serve.connections",
                      static_cast<double>(connections_.size()), {}});
  }
  for (const std::string& name : residents)
    gauges.push_back({"serve.cache.resident", 1.0, {{"design", name}}});
  return telemetry::prometheus_text(gauges);
}

void Server::log_slow_job(const Job& job, const Response& response,
                          double wait_seconds, double run_seconds) const {
  std::ostringstream line;
  line << "slow_job op=" << op_name(job.request.op) << " client=" << job.client
       << " id=" << job.request.id;
  if (!job.request.design.empty()) line << " design=" << job.request.design;
  line << " queue_wait_s=" << wait_seconds << " run_s=" << run_seconds
       << " threshold_s=" << config_.slow_job_seconds;
  // Per-stage breakdown from the job's own report — the span view of the
  // request without needing the tracer enabled.
  if (const report::Json* report = response.payload.get("report")) {
    if (const report::Json* stages = report->get("stages");
        stages != nullptr && stages->kind() == report::Json::Kind::kArray) {
      line << " stages=[";
      bool first = true;
      for (const report::Json& entry : stages->items()) {
        const report::Json* name = entry.get("name");
        const report::Json* seconds = entry.get("seconds");
        if (name == nullptr || seconds == nullptr) continue;
        if (!first) line << ",";
        line << name->as_string() << "=" << seconds->as_double() << "s";
        first = false;
      }
      line << "]";
    }
  }
  util::log_warn() << line.str();
}

void Server::send_response(std::uint64_t client, const Response& response) {
  const std::string line = encode(response);
  int fd = -1;
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    const auto it = connections_.find(client);
    if (it == connections_.end()) return;  // client went away mid-job
    fd = it->second.fd;
  }
  std::lock_guard<std::mutex> lock(write_mutex_);
  std::size_t sent = 0;
  while (sent < line.size()) {
    const ssize_t n = ::send(fd, line.data() + sent, line.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) return;  // disconnect; the I/O loop will reap the fd
    sent += static_cast<std::size_t>(n);
  }
}

void Server::drop_connection(std::uint64_t client) {
  std::lock_guard<std::mutex> lock(conn_mutex_);
  const auto it = connections_.find(client);
  if (it == connections_.end()) return;
  ::close(it->second.fd);
  connections_.erase(it);
}

}  // namespace mebl::serve
