#pragma once

#include <cstdint>
#include <limits>

namespace mebl::util {

/// Deterministic 64-bit PRNG (xoshiro256**), seeded via SplitMix64.
///
/// Every stochastic quantity in the library (benchmark generation, random
/// instances, tie-breaking) flows from a named seed through this generator so
/// that all experiments reproduce bit-identically. Satisfies
/// std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed) noexcept { reseed(seed); }

  /// Re-initialize the state from a 64-bit seed (SplitMix64 expansion).
  void reseed(std::uint64_t seed) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }

  /// Next raw 64-bit value.
  std::uint64_t next() noexcept;

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform01() noexcept;

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi) noexcept;

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p) noexcept { return uniform01() < p; }

  /// Approximately normal variate (sum of 12 uniforms, Irwin-Hall), mean 0
  /// stddev 1. Adequate for workload shaping; not for numerics.
  double normalish() noexcept;

  /// Derive an independent child generator (for per-subsystem streams).
  Rng split() noexcept { return Rng{next() ^ 0x9e3779b97f4a7c15ULL}; }

 private:
  std::uint64_t s_[4]{};
};

}  // namespace mebl::util
