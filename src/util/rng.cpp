#include "util/rng.hpp"

namespace mebl::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) noexcept {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
  // Guard against the (astronomically unlikely) all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full 64-bit range
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t v = next();
  while (v >= limit) v = next();
  return lo + static_cast<std::int64_t>(v % span);
}

double Rng::uniform01() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform_real(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform01();
}

double Rng::normalish() noexcept {
  double acc = 0.0;
  for (int i = 0; i < 12; ++i) acc += uniform01();
  return acc - 6.0;
}

}  // namespace mebl::util
