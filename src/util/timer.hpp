#pragma once

#include <chrono>

namespace mebl::util {

/// Wall-clock stopwatch used by the experiment harnesses to report the CPU
/// columns of the paper's tables.
class Timer {
 public:
  Timer() noexcept : start_(Clock::now()) {}

  /// Restart the stopwatch.
  void reset() noexcept { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction or the last reset().
  [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mebl::util
