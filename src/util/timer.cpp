#include "util/timer.hpp"

// Header-only in practice; this translation unit pins the vtable-free class
// into the util library so every module links the same definition.
