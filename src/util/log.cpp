#include "util/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

#include "telemetry/flight_recorder.hpp"

namespace mebl::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
// One mutex guards both the sink pointer and the stream write, so a line is
// emitted atomically to the sink that was current when it started.
std::mutex g_sink_mutex;
std::ostream* g_sink = nullptr;

const char* tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}
}  // namespace

void Log::set_level(LogLevel level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel Log::level() noexcept {
  return g_level.load(std::memory_order_relaxed);
}
void Log::set_sink(std::ostream* sink) noexcept {
  const std::lock_guard<std::mutex> lock(g_sink_mutex);
  g_sink = sink;
}

std::optional<LogLevel> log_level_from_name(std::string_view name) noexcept {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  return std::nullopt;
}

const char* log_level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

void Log::write(LogLevel level, const std::string& message) {
  const LogLevel threshold = g_level.load(std::memory_order_relaxed);
  if (level < threshold || threshold == LogLevel::kOff) return;
  // Lines that pass the threshold also land in the flight recorder, so a
  // postmortem dump interleaves recent log output with span history.
  telemetry::FlightRecorder::record_log(tag(level), message);
  const std::lock_guard<std::mutex> lock(g_sink_mutex);
  std::ostream& out = g_sink != nullptr ? *g_sink : std::cerr;
  out << "[mebl " << tag(level) << "] " << message << '\n';
}

}  // namespace mebl::util
