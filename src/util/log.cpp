#include "util/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace mebl::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
// One mutex guards both the sink pointer and the stream write, so a line is
// emitted atomically to the sink that was current when it started.
std::mutex g_sink_mutex;
std::ostream* g_sink = nullptr;

const char* tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}
}  // namespace

void Log::set_level(LogLevel level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel Log::level() noexcept {
  return g_level.load(std::memory_order_relaxed);
}
void Log::set_sink(std::ostream* sink) noexcept {
  const std::lock_guard<std::mutex> lock(g_sink_mutex);
  g_sink = sink;
}

void Log::write(LogLevel level, const std::string& message) {
  const LogLevel threshold = g_level.load(std::memory_order_relaxed);
  if (level < threshold || threshold == LogLevel::kOff) return;
  const std::lock_guard<std::mutex> lock(g_sink_mutex);
  std::ostream& out = g_sink != nullptr ? *g_sink : std::cerr;
  out << "[mebl " << tag(level) << "] " << message << '\n';
}

}  // namespace mebl::util
