#include "util/log.hpp"

#include <iostream>

namespace mebl::util {

namespace {
LogLevel g_level = LogLevel::kWarn;
std::ostream* g_sink = nullptr;

const char* tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}
}  // namespace

void Log::set_level(LogLevel level) noexcept { g_level = level; }
LogLevel Log::level() noexcept { return g_level; }
void Log::set_sink(std::ostream* sink) noexcept { g_sink = sink; }

void Log::write(LogLevel level, const std::string& message) {
  if (level < g_level || g_level == LogLevel::kOff) return;
  std::ostream& out = g_sink != nullptr ? *g_sink : std::cerr;
  out << "[mebl " << tag(level) << "] " << message << '\n';
}

}  // namespace mebl::util
