#pragma once

#include <iosfwd>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace mebl::util {

/// Severity levels for the library logger.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Parse a CLI-style level name ("debug", "info", "warn", "error", "off");
/// nullopt for anything else. Case-sensitive on purpose — flags document
/// the lowercase spellings.
[[nodiscard]] std::optional<LogLevel> log_level_from_name(
    std::string_view name) noexcept;

/// The canonical lowercase name for `level` ("debug", ...).
[[nodiscard]] const char* log_level_name(LogLevel level) noexcept;

/// Minimal leveled logger. The routing stages use it for progress and
/// anomaly reporting; benches set the threshold to kWarn so table output
/// stays clean.
///
/// Thread-safety guarantee: all static members may be called concurrently
/// from any number of threads. The level is an atomic (a racing set_level
/// applies to subsequent messages); the sink pointer and the actual stream
/// write share one mutex, so concurrent write() calls emit whole,
/// non-interleaved lines and never observe a half-installed sink. A stream
/// passed to set_sink must outlive its use as the sink, and must not be
/// written to directly by other threads while installed.
class Log {
 public:
  /// Global threshold; messages below it are dropped.
  static void set_level(LogLevel level) noexcept;
  static LogLevel level() noexcept;

  /// Redirect output (default std::cerr). Pass nullptr to restore default.
  static void set_sink(std::ostream* sink) noexcept;

  /// Emit one line with a level tag. Thread-safe (serialized per line).
  static void write(LogLevel level, const std::string& message);
};

namespace log_detail {
class Line {
 public:
  explicit Line(LogLevel level) : level_(level) {}
  Line(const Line&) = delete;
  Line& operator=(const Line&) = delete;
  ~Line() { Log::write(level_, stream_.str()); }
  template <typename T>
  Line& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace log_detail

inline log_detail::Line log_debug() { return log_detail::Line(LogLevel::kDebug); }
inline log_detail::Line log_info() { return log_detail::Line(LogLevel::kInfo); }
inline log_detail::Line log_warn() { return log_detail::Line(LogLevel::kWarn); }
inline log_detail::Line log_error() { return log_detail::Line(LogLevel::kError); }

}  // namespace mebl::util
