#include "util/table.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <sstream>

namespace mebl::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  assert(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::add_rule() { rules_.push_back(rows_.size()); }

std::string Table::fixed(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

std::string Table::str(const std::string& title) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  const auto hline = [&] {
    std::string s = "+";
    for (auto w : width) s += std::string(w + 2, '-') + "+";
    return s + "\n";
  };
  const auto emit = [&](const std::vector<std::string>& cells, bool left_first) {
    std::string s = "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const std::size_t pad = width[c] - cells[c].size();
      // First column (circuit names) left-aligned, numbers right-aligned.
      if (c == 0 && left_first)
        s += " " + cells[c] + std::string(pad, ' ') + " |";
      else
        s += " " + std::string(pad, ' ') + cells[c] + " |";
    }
    return s + "\n";
  };

  std::ostringstream out;
  if (!title.empty()) out << title << "\n";
  out << hline() << emit(headers_, false) << hline();
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    if (std::find(rules_.begin(), rules_.end(), r) != rules_.end()) out << hline();
    out << emit(rows_[r], true);
  }
  out << hline();
  return out.str();
}

}  // namespace mebl::util
