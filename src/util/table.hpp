#pragma once

#include <cstddef>
#include <type_traits>
#include <string>
#include <vector>

namespace mebl::util {

/// Plain-text table printer used by the bench harnesses to emit the paper's
/// tables in aligned, diff-friendly form.
///
///   Table t{"Circuit", "Rout. (%)", "#VV", "#SP", "CPU (s)"};
///   t.add_row("S38417", "99.08", "35", "122", "6");
///   std::cout << t.str();
class Table {
 public:
  /// Construct with column headers.
  explicit Table(std::vector<std::string> headers);

  template <typename... Cells>
  explicit Table(Cells&&... headers)
      : Table(std::vector<std::string>{std::string(headers)...}) {}

  /// Append a row; the number of cells must match the header count.
  void add_row(std::vector<std::string> cells);

  template <typename... Cells>
  void add_row(Cells&&... cells) {
    add_row(std::vector<std::string>{to_cell(cells)...});
  }

  /// Insert a horizontal rule before the next added row (used to set the
  /// summary "Comp." row apart, as in the paper).
  void add_rule();

  /// Render the table with a title line, header, and column alignment.
  [[nodiscard]] std::string str(const std::string& title = {}) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t cols() const noexcept { return headers_.size(); }

  /// Numeric formatting helpers for table cells.
  static std::string fixed(double v, int digits);
  static std::string ratio(double v) { return fixed(v, 3); }

 private:
  static std::string to_cell(const std::string& s) { return s; }
  static std::string to_cell(double v) { return fixed(v, 2); }
  template <typename T>
  static std::string to_cell(T v) {
    if constexpr (std::is_arithmetic_v<T>)
      return std::to_string(v);
    else
      return std::string(v);
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::size_t> rules_;  // row indices preceded by a rule
};

}  // namespace mebl::util
