#include "bench_suite/circuit_generator.hpp"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <cmath>
#include <stdexcept>
#include <string>
#include <unordered_set>

namespace mebl::bench_suite {

using geom::Coord;
using geom::Point;

std::vector<BenchmarkSpec> mcnc_suite() {
  return {
      {"Struct", 4903, 4904, 3, 1920, 5471, 36},
      {"Primary1", 7522, 4988, 3, 904, 2941, 36},
      {"Primary2", 10438, 6488, 3, 3029, 11226, 36},
      {"S5378", 435, 239, 3, 1694, 4818, 36},
      {"S9234", 404, 225, 3, 1486, 4260, 36},
      {"S13207", 660, 365, 3, 3781, 10776, 36},
      {"S15850", 705, 389, 3, 4472, 12793, 36},
      {"S38417", 1144, 619, 3, 11309, 32344, 36},
      {"S38584", 1295, 672, 3, 14754, 42931, 36},
  };
}

std::vector<BenchmarkSpec> faraday_suite() {
  return {
      {"Dma", 408.4, 408.4, 6, 13256, 73982, 32},
      {"Dsp1", 706, 706, 6, 28447, 144872, 32},
      {"Dsp2", 642.8, 642.8, 6, 28431, 144703, 32},
      {"Risc1", 1003.6, 1003.6, 6, 34034, 196677, 32},
      {"Risc2", 959.6, 959.6, 6, 34034, 196670, 32},
  };
}

const BenchmarkSpec* find_spec(const std::string& name) {
  static const std::vector<BenchmarkSpec> all = [] {
    auto specs = mcnc_suite();
    const auto faraday = faraday_suite();
    specs.insert(specs.end(), faraday.begin(), faraday.end());
    return specs;
  }();
  const auto lower = [](std::string s) {
    for (char& c : s) c = static_cast<char>(std::tolower(c));
    return s;
  };
  for (const auto& spec : all)
    if (lower(spec.name) == lower(name)) return &spec;
  return nullptr;
}

namespace {

/// Reject degenerate inputs with a parameter-naming error instead of
/// emitting an empty instance, looping forever hunting a free track point,
/// or tripping an assert only in debug builds.
void validate(const BenchmarkSpec& spec, const GeneratorConfig& config) {
  const auto fail = [&](const std::string& what) {
    throw std::invalid_argument("generate_circuit(" + spec.name + "): " + what);
  };
  if (spec.nets < 1) fail("spec.nets must be >= 1, got " +
                          std::to_string(spec.nets));
  if (spec.pins < 2 * spec.nets)
    fail("spec.pins must be >= 2 * spec.nets (every net needs two pins), got " +
         std::to_string(spec.pins) + " pins for " + std::to_string(spec.nets) +
         " nets");
  if (spec.layers < 1) fail("spec.layers must be >= 1, got " +
                            std::to_string(spec.layers));
  if (!(spec.um_width > 0.0) || !(spec.um_height > 0.0))
    fail("spec.um_width/um_height must be positive, got " +
         std::to_string(spec.um_width) + " x " + std::to_string(spec.um_height));
  if (spec.feature_nm <= 0) fail("spec.feature_nm must be positive, got " +
                                 std::to_string(spec.feature_nm));
  if (config.scale == Scale::kLaptop && !(config.pin_density > 0.0))
    fail("config.pin_density must be positive, got " +
         std::to_string(config.pin_density));
  if (config.tile_size < 2) fail("config.tile_size must be >= 2, got " +
                                 std::to_string(config.tile_size));
  if (config.stitch_pitch < 2)
    fail("config.stitch_pitch must be >= 2, got " +
         std::to_string(config.stitch_pitch));
  if (config.stitch_epsilon < 0 ||
      2 * config.stitch_epsilon + 1 >= config.stitch_pitch)
    fail("config.stitch_epsilon must satisfy 0 <= 2*epsilon+1 < stitch_pitch "
         "(otherwise every vertical track is stitch-unfriendly), got epsilon " +
         std::to_string(config.stitch_epsilon) + " at pitch " +
         std::to_string(config.stitch_pitch));
  if (config.escape_halfwidth < 0)
    fail("config.escape_halfwidth must be >= 0, got " +
         std::to_string(config.escape_halfwidth));
  if (!(config.local_spread >= 0.0))
    fail("config.local_spread must be >= 0, got " +
         std::to_string(config.local_spread));
  if (!(config.global_net_fraction >= 0.0 && config.global_net_fraction <= 1.0))
    fail("config.global_net_fraction must be in [0, 1], got " +
         std::to_string(config.global_net_fraction));
  if (!(config.global_spread_fraction > 0.0))
    fail("config.global_spread_fraction must be positive, got " +
         std::to_string(config.global_spread_fraction));
  if (config.max_degree < 2) fail("config.max_degree must be >= 2, got " +
                                  std::to_string(config.max_degree));
  if (!(config.pin_on_line_fraction >= 0.0 &&
        config.pin_on_line_fraction <= 1.0))
    fail("config.pin_on_line_fraction must be in [0, 1], got " +
         std::to_string(config.pin_on_line_fraction));
}

}  // namespace

GeneratedCircuit generate_circuit(const BenchmarkSpec& spec,
                                  const GeneratorConfig& config,
                                  std::uint64_t seed) {
  validate(spec, config);
  util::Rng rng(seed ^ std::hash<std::string>{}(spec.name));

  // Extent: at laptop scale, area = pins / density split by the paper's
  // aspect ratio; at full scale, the paper's physical die at a two-feature
  // track pitch. Either way rounded up to whole tiles.
  Coord width = 0;
  Coord height = 0;
  if (config.scale == Scale::kFull) {
    const double pitch_nm = 2.0 * spec.feature_nm;
    width = static_cast<Coord>(std::lround(spec.um_width * 1000.0 / pitch_nm));
    height =
        static_cast<Coord>(std::lround(spec.um_height * 1000.0 / pitch_nm));
  } else {
    const double aspect = spec.um_width / spec.um_height;
    const double area = static_cast<double>(spec.pins) / config.pin_density;
    width = static_cast<Coord>(std::lround(std::sqrt(area * aspect)));
    height = static_cast<Coord>(std::lround(std::sqrt(area / aspect)));
  }
  const auto round_tiles = [&](Coord v) {
    return ((v + config.tile_size - 1) / config.tile_size) * config.tile_size;
  };
  width = std::max(round_tiles(width), 2 * config.tile_size);
  height = std::max(round_tiles(height), 2 * config.tile_size);

  // The pin placer needs headroom to find distinct free points; a netlist
  // denser than a quarter of all track points would spin (or emit pins
  // stacked against the stitch columns), so refuse it up front.
  if (static_cast<double>(spec.pins) >
      0.25 * static_cast<double>(width) * static_cast<double>(height))
    throw std::invalid_argument(
        "generate_circuit(" + spec.name + "): " + std::to_string(spec.pins) +
        " pins exceed a quarter of the " + std::to_string(width) + " x " +
        std::to_string(height) +
        " track points; lower pin_density or shrink the netlist");

  grid::StitchPlan plan(width, config.stitch_pitch, config.stitch_epsilon,
                        config.escape_halfwidth);
  GeneratedCircuit circuit{
      spec,
      grid::RoutingGrid(width, height, spec.layers, config.tile_size,
                        std::move(plan)),
      netlist::Netlist{}};

  // Degree distribution: every net gets 2 pins; the surplus is dealt out in
  // geometrically-sized chunks so a few nets become high-fanout, as in
  // placed standard-cell designs.
  std::vector<int> degree(static_cast<std::size_t>(spec.nets), 2);
  int surplus = spec.pins - 2 * spec.nets;
  assert(surplus >= 0);
  while (surplus > 0) {
    const auto net =
        static_cast<std::size_t>(rng.uniform_int(0, spec.nets - 1));
    int chunk = 1;
    while (chunk < surplus && chunk < config.max_degree / 4 && rng.chance(0.5))
      ++chunk;
    chunk = std::min(chunk, config.max_degree - degree[net]);
    if (chunk <= 0) continue;
    degree[net] += chunk;
    surplus -= chunk;
  }

  // Pin placement: each net is a cloud around a uniformly placed centre;
  // spread is exponential for local nets and chip-scale for the semi-global
  // fraction. Every pin lands on a distinct free track point.
  std::unordered_set<Point> used;
  used.reserve(static_cast<std::size_t>(spec.pins) * 2);
  const auto place_pin = [&](netlist::NetId net, Point center, double spread) {
    for (int attempt = 0;; ++attempt) {
      const double sx = spread * (1.0 + 0.25 * attempt);
      Point p{static_cast<Coord>(std::lround(center.x + rng.normalish() * sx)),
              static_cast<Coord>(std::lround(center.y + rng.normalish() * sx))};
      p.x = std::clamp<Coord>(p.x, 0, width - 1);
      p.y = std::clamp<Coord>(p.y, 0, height - 1);
      // Placements keep most pins off stitching-line columns; the rare
      // remainder become the tolerated fixed-pin via violations.
      if (circuit.grid.stitch().is_stitch_column(p.x) &&
          !rng.chance(config.pin_on_line_fraction))
        continue;
      if (used.insert(p).second) {
        circuit.netlist.add_pin(net, p);
        return;
      }
    }
  };

  for (int n = 0; n < spec.nets; ++n) {
    const netlist::NetId net =
        circuit.netlist.add_net(spec.name + "_n" + std::to_string(n));
    const Point center{static_cast<Coord>(rng.uniform_int(0, width - 1)),
                       static_cast<Coord>(rng.uniform_int(0, height - 1))};
    const bool global_net = rng.chance(config.global_net_fraction);
    // The default fraction 0.25 reproduces the historical min/4 spread
    // bit-for-bit (scaling by a power of two is exact).
    const double spread =
        global_net ? static_cast<double>(std::min(width, height)) *
                         config.global_spread_fraction
                   : config.local_spread * (0.5 - std::log(1.0 - rng.uniform01()));
    for (int d = 0; d < degree[static_cast<std::size_t>(n)]; ++d)
      place_pin(net, center, spread);
  }
  return circuit;
}

}  // namespace mebl::bench_suite
