#include "bench_suite/layer_instance_generator.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace mebl::bench_suite {

std::vector<assign::SegmentProfile> generate_layer_instance(
    const LayerInstanceConfig& config, util::Rng& rng) {
  assert(config.rows >= 2 && config.segments >= 1);
  std::vector<assign::SegmentProfile> segments;
  segments.reserve(static_cast<std::size_t>(config.segments));
  for (int s = 0; s < config.segments; ++s) {
    // Geometric length with the configured mean, clipped to the panel.
    const double u = rng.uniform01();
    const int length = std::clamp<int>(
        1 + static_cast<int>(-std::log(1.0 - u) * (config.mean_length - 1.0)),
        1, config.rows);
    const auto lo =
        static_cast<geom::Coord>(rng.uniform_int(0, config.rows - length));
    segments.push_back(assign::SegmentProfile{
        {lo, lo + length - 1}, static_cast<netlist::NetId>(s)});
  }
  return segments;
}

DensityStats measure_density(
    const std::vector<std::vector<assign::SegmentProfile>>& instances) {
  DensityStats stats;
  if (instances.empty()) return stats;
  double sum_max_seg = 0.0, sum_avg_seg = 0.0;
  double sum_max_end = 0.0, sum_avg_end = 0.0;
  for (const auto& segments : instances) {
    geom::Coord lo = 0, hi = 0;
    if (!segments.empty()) {
      lo = segments[0].span.lo;
      hi = segments[0].span.hi;
      for (const auto& s : segments) {
        lo = std::min(lo, s.span.lo);
        hi = std::max(hi, s.span.hi);
      }
    }
    const auto rows = static_cast<std::size_t>(hi - lo + 1);
    std::vector<int> density(rows, 0), ends(rows, 0);
    for (const auto& s : segments) {
      for (geom::Coord r = s.span.lo; r <= s.span.hi; ++r)
        ++density[static_cast<std::size_t>(r - lo)];
      ++ends[static_cast<std::size_t>(s.span.lo - lo)];
      ++ends[static_cast<std::size_t>(s.span.hi - lo)];
    }
    int max_seg = 0, max_end = 0;
    double total_seg = 0.0, total_end = 0.0;
    for (std::size_t r = 0; r < rows; ++r) {
      max_seg = std::max(max_seg, density[r]);
      max_end = std::max(max_end, ends[r]);
      total_seg += density[r];
      total_end += ends[r];
    }
    sum_max_seg += max_seg;
    sum_avg_seg += total_seg / static_cast<double>(rows);
    sum_max_end += max_end;
    sum_avg_end += total_end / static_cast<double>(rows);
  }
  const auto n = static_cast<double>(instances.size());
  stats.max_segment_density = sum_max_seg / n;
  stats.avg_segment_density = sum_avg_seg / n;
  stats.max_line_end_density = sum_max_end / n;
  stats.avg_line_end_density = sum_avg_end / n;
  return stats;
}

}  // namespace mebl::bench_suite
