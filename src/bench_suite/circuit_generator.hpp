#pragma once

#include <string>
#include <vector>

#include "grid/routing_grid.hpp"
#include "netlist/netlist.hpp"
#include "util/rng.hpp"

namespace mebl::bench_suite {

/// Published characteristics of one benchmark circuit (Tables I and II of
/// the paper). The MCNC / Faraday suites themselves are not redistributable;
/// the generator below synthesizes circuits with these exact net/pin/layer
/// counts and aspect ratios (see DESIGN.md, substitution table).
struct BenchmarkSpec {
  std::string name;
  double um_width = 0.0;   ///< paper's layout width in micrometres
  double um_height = 0.0;  ///< paper's layout height in micrometres
  int layers = 3;          ///< routing layers
  int nets = 0;
  int pins = 0;
  int feature_nm = 36;  ///< shrunk minimum feature size used by the paper
};

/// The nine MCNC circuits of Table I.
[[nodiscard]] std::vector<BenchmarkSpec> mcnc_suite();

/// The five Faraday circuits of Table II.
[[nodiscard]] std::vector<BenchmarkSpec> faraday_suite();

/// Look up a spec by (case-insensitive) name across both suites.
[[nodiscard]] const BenchmarkSpec* find_spec(const std::string& name);

/// Generator knobs. Track extents are derived from the target pin density
/// and the spec's aspect ratio, so circuits stay routable at laptop scale
/// while preserving the paper's relative sizes.
struct GeneratorConfig {
  double pin_density = 0.06;  ///< pins per track point (area = pins/density)
  geom::Coord tile_size = 30;
  geom::Coord stitch_pitch = 15;  ///< paper: 15 routing pitches between lines
  geom::Coord stitch_epsilon = 1;  ///< tracks adjacent to lines are unfriendly
  geom::Coord escape_halfwidth = 2;
  /// Mean half-extent (tracks) of a local net's pin cloud.
  double local_spread = 8.0;
  /// Fraction of nets that are semi-global (pin cloud spans ~1/4 chip).
  double global_net_fraction = 0.06;
  /// Upper bound on a single net's pin count.
  int max_degree = 24;
  /// Fraction of pins allowed to sit on a stitching-line column. Real
  /// placements keep cell pins off the lines; the residue models the fixed
  /// pins whose via violations the paper tolerates (Tables III/VII/VIII
  /// report them as #VV).
  double pin_on_line_fraction = 0.01;
};

/// A generated circuit: grid plus netlist (pins placed on distinct tracks).
struct GeneratedCircuit {
  BenchmarkSpec spec;
  grid::RoutingGrid grid;
  netlist::Netlist netlist;
};

/// Deterministically synthesize a circuit matching `spec` (same #nets,
/// #pins, #layers; extent from density and aspect ratio). The same
/// (spec, config, seed) triple always produces the identical circuit.
[[nodiscard]] GeneratedCircuit generate_circuit(const BenchmarkSpec& spec,
                                                const GeneratorConfig& config,
                                                std::uint64_t seed);

}  // namespace mebl::bench_suite
