#pragma once

#include <string>
#include <vector>

#include "grid/routing_grid.hpp"
#include "netlist/netlist.hpp"
#include "util/rng.hpp"

namespace mebl::bench_suite {

/// Published characteristics of one benchmark circuit (Tables I and II of
/// the paper). The MCNC / Faraday suites themselves are not redistributable;
/// the generator below synthesizes circuits with these exact net/pin/layer
/// counts and aspect ratios (see DESIGN.md, substitution table).
struct BenchmarkSpec {
  std::string name;
  double um_width = 0.0;   ///< paper's layout width in micrometres
  double um_height = 0.0;  ///< paper's layout height in micrometres
  int layers = 3;          ///< routing layers
  int nets = 0;
  int pins = 0;
  int feature_nm = 36;  ///< shrunk minimum feature size used by the paper
};

/// The nine MCNC circuits of Table I.
[[nodiscard]] std::vector<BenchmarkSpec> mcnc_suite();

/// The five Faraday circuits of Table II.
[[nodiscard]] std::vector<BenchmarkSpec> faraday_suite();

/// Look up a spec by (case-insensitive) name across both suites.
[[nodiscard]] const BenchmarkSpec* find_spec(const std::string& name);

/// Extent derivation mode of the generator (DESIGN.md §15).
enum class Scale {
  /// Track extents from the target pin density and the spec's aspect ratio
  /// — the seed behavior (~1.1k tracks for S38417), routable on a laptop.
  kLaptop,
  /// Track extents from the paper's physical die at a two-feature track
  /// pitch: tracks = um * 1000 / (2 * feature_nm) per axis (~16k tracks
  /// wide for S38417 at 36 nm). The netlist keeps the spec's net/pin
  /// counts, so pin density drops ~200x — like a real placed die, most of
  /// the fabric is empty and nets are *relatively* tiny.
  kFull,
};

/// Generator knobs. Track extents are derived from the target pin density
/// and the spec's aspect ratio, so circuits stay routable at laptop scale
/// while preserving the paper's relative sizes.
struct GeneratorConfig {
  double pin_density = 0.06;  ///< pins per track point (area = pins/density)
  geom::Coord tile_size = 30;
  geom::Coord stitch_pitch = 15;  ///< paper: 15 routing pitches between lines
  geom::Coord stitch_epsilon = 1;  ///< tracks adjacent to lines are unfriendly
  geom::Coord escape_halfwidth = 2;
  /// Mean half-extent (tracks) of a local net's pin cloud.
  double local_spread = 8.0;
  /// Fraction of nets that are semi-global (pin cloud spans a
  /// global_spread_fraction of the chip).
  double global_net_fraction = 0.06;
  /// Semi-global pin-cloud half-extent as a fraction of min(width, height).
  double global_spread_fraction = 0.25;
  /// Upper bound on a single net's pin count.
  int max_degree = 24;
  /// Fraction of pins allowed to sit on a stitching-line column. Real
  /// placements keep cell pins off the lines; the residue models the fixed
  /// pins whose via violations the paper tolerates (Tables III/VII/VIII
  /// report them as #VV).
  double pin_on_line_fraction = 0.01;
  /// Extent derivation; see Scale.
  Scale scale = Scale::kLaptop;

  /// Paper-scale preset: physical extents plus a paper-like net-length
  /// distribution. Local clouds keep their absolute track spread (so they
  /// become relatively tiny at 16k tracks, as placed cells do), and the
  /// semi-global tail is thinner and shorter than the laptop default —
  /// at constant gate count a larger die does not grow more long nets.
  [[nodiscard]] static GeneratorConfig full_scale() {
    GeneratorConfig config;
    config.scale = Scale::kFull;
    config.local_spread = 5.0;
    config.global_net_fraction = 0.02;
    config.global_spread_fraction = 0.125;
    return config;
  }
};

/// A generated circuit: grid plus netlist (pins placed on distinct tracks).
struct GeneratedCircuit {
  BenchmarkSpec spec;
  grid::RoutingGrid grid;
  netlist::Netlist netlist;
};

/// Deterministically synthesize a circuit matching `spec` (same #nets,
/// #pins, #layers; extent from config.scale). The same (spec, config, seed)
/// triple always produces the identical circuit.
///
/// Throws std::invalid_argument — naming the offending parameter — on
/// degenerate inputs (non-positive dimensions, pins < 2*nets, stitch
/// epsilon swallowing the pitch, pin counts the die cannot hold, ...)
/// instead of emitting an empty or self-overlapping instance.
[[nodiscard]] GeneratedCircuit generate_circuit(const BenchmarkSpec& spec,
                                                const GeneratorConfig& config,
                                                std::uint64_t seed);

}  // namespace mebl::bench_suite
