#pragma once

#include <vector>

#include "assign/conflict_graph.hpp"
#include "util/rng.hpp"

namespace mebl::bench_suite {

/// Knobs for the random layer-assignment instances of Tables V/VI. The
/// defaults are tuned so the measured density statistics land close to the
/// paper's Table V (max/avg segment density ~11.7/5.7, line-end density
/// ~6.1/2.0).
struct LayerInstanceConfig {
  int rows = 24;             ///< global tiles per panel
  int segments = 24;         ///< intervals per instance
  double mean_length = 5.7;  ///< mean segment length in tiles (geometric)
};

/// One random panel instance: segments with tile-row spans.
[[nodiscard]] std::vector<assign::SegmentProfile> generate_layer_instance(
    const LayerInstanceConfig& config, util::Rng& rng);

/// Density statistics of an instance set (the columns of Table V).
struct DensityStats {
  double max_segment_density = 0.0;
  double avg_segment_density = 0.0;
  double max_line_end_density = 0.0;
  double avg_line_end_density = 0.0;
};

/// Average the per-instance max/avg densities over a set of instances.
[[nodiscard]] DensityStats measure_density(
    const std::vector<std::vector<assign::SegmentProfile>>& instances);

}  // namespace mebl::bench_suite
