#include "place/pin_refine.hpp"

#include <unordered_set>

namespace mebl::place {

using geom::Coord;
using geom::Point;

namespace {

bool hazardous(const grid::StitchPlan& stitch, Coord x,
               const PinRefineConfig& config) {
  if (stitch.is_stitch_column(x)) return true;
  return config.clear_unfriendly_regions && stitch.in_unfriendly_region(x);
}

}  // namespace

PinRefineStats refine_pins(const grid::RoutingGrid& grid,
                           netlist::Netlist& netlist,
                           const PinRefineConfig& config) {
  const auto& stitch = grid.stitch();
  PinRefineStats stats;

  std::unordered_set<Point> occupied;
  occupied.reserve(netlist.num_pins() * 2);
  for (const auto& pin : netlist.pins()) occupied.insert(pin.pos);

  for (netlist::PinId id = 0;
       id < static_cast<netlist::PinId>(netlist.num_pins()); ++id) {
    const Point pos = netlist.pin(id).pos;
    const bool on_line = stitch.is_stitch_column(pos.x);
    const bool unfriendly = stitch.in_unfriendly_region(pos.x);
    if (on_line) ++stats.pins_on_lines_before;
    if (unfriendly && !on_line) ++stats.pins_unfriendly_before;
    if (!hazardous(stitch, pos.x, config)) continue;

    // Candidate displacements by increasing distance, deterministic order
    // (right then left at each distance).
    Point best{-1, -1};
    for (Coord d = 1; d <= config.max_displacement && best.x < 0; ++d) {
      for (const Coord nx : {pos.x + d, pos.x - d}) {
        const Point candidate{nx, pos.y};
        if (nx < 0 || nx >= grid.width()) continue;
        if (hazardous(stitch, nx, config)) continue;
        if (occupied.count(candidate) != 0) continue;
        best = candidate;
        break;
      }
    }
    if (best.x < 0) continue;  // nothing within the displacement budget

    occupied.erase(pos);
    occupied.insert(best);
    netlist.move_pin(id, best);
    ++stats.pins_moved;
    stats.total_displacement += manhattan(pos, best);
  }

  for (const auto& pin : netlist.pins()) {
    if (stitch.is_stitch_column(pin.pos.x))
      ++stats.pins_on_lines_after;
    else if (stitch.in_unfriendly_region(pin.pos.x))
      ++stats.pins_unfriendly_after;
  }
  return stats;
}

}  // namespace mebl::place
