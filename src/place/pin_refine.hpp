#pragma once

#include "grid/routing_grid.hpp"
#include "netlist/netlist.hpp"

namespace mebl::place {

/// Stitch-aware placement refinement — the paper's stated future work
/// (SV: "stitch-aware algorithms should be also desirable in the placement
/// stage ... to remove the via violations due to the fixed pin positions").
///
/// This pass post-processes a placement at the pin level: pins sitting on a
/// stitching line (guaranteed via violations) or inside a stitch unfriendly
/// region (short-polygon hazards) are nudged to the nearest free track
/// outside the hazard, within a bounded displacement.
struct PinRefineConfig {
  /// Maximum displacement in tracks. Cell-level legality in a real flow
  /// bounds how far a pin can move; a few tracks is realistic.
  geom::Coord max_displacement = 3;
  /// Also move pins that are merely inside unfriendly regions (not only the
  /// hard on-line cases).
  bool clear_unfriendly_regions = true;
};

/// Outcome of a refinement pass.
struct PinRefineStats {
  int pins_on_lines_before = 0;
  int pins_on_lines_after = 0;
  int pins_unfriendly_before = 0;
  int pins_unfriendly_after = 0;
  int pins_moved = 0;
  std::int64_t total_displacement = 0;
};

/// Refine `netlist` in place. Pins move only horizontally (the hazard is an
/// x-distance to a vertical line) to the nearest free track; occupied
/// candidate positions are skipped so pins stay unique. Deterministic.
[[nodiscard]] PinRefineStats refine_pins(const grid::RoutingGrid& grid,
                                         netlist::Netlist& netlist,
                                         const PinRefineConfig& config = {});

}  // namespace mebl::place
