#include "graph/shortest_path.hpp"

#include <algorithm>
#include <cassert>
#include <queue>

namespace mebl::graph {

void AdjacencyGraph::add_arc(NodeId from, NodeId to, double weight) {
  assert(weight >= 0.0);
  adj_[static_cast<std::size_t>(from)].push_back(Arc{to, weight});
}

void AdjacencyGraph::add_edge(NodeId a, NodeId b, double weight) {
  add_arc(a, b, weight);
  add_arc(b, a, weight);
}

std::vector<NodeId> ShortestPathTree::path_to(NodeId target) const {
  std::vector<NodeId> path;
  if (!reached(target)) return path;
  for (NodeId v = target; v != -1; v = parent[static_cast<std::size_t>(v)])
    path.push_back(v);
  std::reverse(path.begin(), path.end());
  return path;
}

namespace {

ShortestPathTree run_dijkstra(const AdjacencyGraph& graph, NodeId source,
                              NodeId target /* -1 = all */) {
  const std::size_t n = graph.num_nodes();
  ShortestPathTree tree;
  tree.dist.assign(n, ShortestPathTree::infinity());
  tree.parent.assign(n, -1);

  using Entry = std::pair<double, NodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  tree.dist[static_cast<std::size_t>(source)] = 0.0;
  heap.emplace(0.0, source);

  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > tree.dist[static_cast<std::size_t>(u)]) continue;  // stale entry
    if (u == target) break;
    for (const auto& arc : graph.arcs_from(u)) {
      const double nd = d + arc.weight;
      if (nd < tree.dist[static_cast<std::size_t>(arc.to)]) {
        tree.dist[static_cast<std::size_t>(arc.to)] = nd;
        tree.parent[static_cast<std::size_t>(arc.to)] = u;
        heap.emplace(nd, arc.to);
      }
    }
  }
  return tree;
}

}  // namespace

ShortestPathTree dijkstra(const AdjacencyGraph& graph, NodeId source) {
  return run_dijkstra(graph, source, -1);
}

ShortestPathTree dijkstra(const AdjacencyGraph& graph, NodeId source,
                          NodeId target) {
  return run_dijkstra(graph, source, target);
}

}  // namespace mebl::graph
