#pragma once

#include <optional>
#include <vector>

#include "graph/shortest_path.hpp"

namespace mebl::graph {

/// Directed acyclic graph with integer arc lengths, supporting
/// longest-path queries. The graph-based track assigner uses this on the
/// minimum / maximum track constraint graphs (paper SIII-C2, Fig. 11) to
/// compute the feasible track window of every interval.
class Dag {
 public:
  explicit Dag(std::size_t num_nodes) : adj_(num_nodes) {}

  void add_arc(NodeId from, NodeId to, std::int64_t length);

  [[nodiscard]] std::size_t num_nodes() const noexcept { return adj_.size(); }

  /// Longest distance from `source` to every node (unreachable nodes get
  /// std::nullopt in the result). Returns std::nullopt for the whole query
  /// if the graph has a cycle reachable from `source`.
  [[nodiscard]] std::optional<std::vector<std::optional<std::int64_t>>>
  longest_from(NodeId source) const;

 private:
  struct Arc {
    NodeId to;
    std::int64_t length;
  };
  std::vector<std::vector<Arc>> adj_;
};

}  // namespace mebl::graph
