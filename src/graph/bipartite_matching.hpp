#pragma once

#include <vector>

namespace mebl::graph {

/// Minimum-weight perfect matching on a complete bipartite graph
/// (Hungarian / Kuhn–Munkres algorithm, O(n^3)).
///
/// `cost` is a square matrix: cost[i][j] is the weight of matching left
/// vertex i to right vertex j. Returns match_of_left: for each left vertex
/// the index of its matched right vertex.
///
/// The stitch-aware layer assigner uses this to merge the coloring groups of
/// successive k-colorable vertex sets with minimum total conflict-edge
/// weight (paper SIII-B, Fig. 9(d)).
[[nodiscard]] std::vector<std::size_t> min_weight_perfect_matching(
    const std::vector<std::vector<double>>& cost);

/// Total weight of a matching under the given cost matrix.
[[nodiscard]] double matching_weight(
    const std::vector<std::vector<double>>& cost,
    const std::vector<std::size_t>& match_of_left);

}  // namespace mebl::graph
