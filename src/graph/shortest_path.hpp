#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace mebl::graph {

using NodeId = std::int32_t;

/// Weighted directed graph in adjacency-list form, the substrate for the
/// shortest-path queries of the global router.
class AdjacencyGraph {
 public:
  struct Arc {
    NodeId to;
    double weight;
  };

  explicit AdjacencyGraph(std::size_t num_nodes) : adj_(num_nodes) {}

  void add_arc(NodeId from, NodeId to, double weight);
  /// Add arcs in both directions with the same weight.
  void add_edge(NodeId a, NodeId b, double weight);

  [[nodiscard]] std::size_t num_nodes() const noexcept { return adj_.size(); }
  [[nodiscard]] const std::vector<Arc>& arcs_from(NodeId n) const {
    return adj_[static_cast<std::size_t>(n)];
  }

 private:
  std::vector<std::vector<Arc>> adj_;
};

/// Result of a single-source shortest-path run. `dist[v]` is infinity() for
/// unreachable v; `parent[v]` is -1 for the source and unreachable nodes.
struct ShortestPathTree {
  std::vector<double> dist;
  std::vector<NodeId> parent;

  static constexpr double infinity() noexcept {
    return std::numeric_limits<double>::infinity();
  }

  [[nodiscard]] bool reached(NodeId v) const {
    return dist[static_cast<std::size_t>(v)] < infinity();
  }

  /// Path from the source to `target`, inclusive. Empty if unreachable.
  [[nodiscard]] std::vector<NodeId> path_to(NodeId target) const;
};

/// Dijkstra from `source` over non-negative arc weights.
[[nodiscard]] ShortestPathTree dijkstra(const AdjacencyGraph& graph,
                                        NodeId source);

/// Dijkstra that stops as soon as `target` is settled (other distances may
/// be partial).
[[nodiscard]] ShortestPathTree dijkstra(const AdjacencyGraph& graph,
                                        NodeId source, NodeId target);

}  // namespace mebl::graph
