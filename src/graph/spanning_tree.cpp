#include "graph/spanning_tree.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace mebl::graph {

DisjointSets::DisjointSets(std::size_t n)
    : parent_(n), size_(n, 1), num_sets_(n) {
  std::iota(parent_.begin(), parent_.end(), 0);
}

NodeId DisjointSets::find(NodeId v) {
  NodeId root = v;
  while (parent_[static_cast<std::size_t>(root)] != root)
    root = parent_[static_cast<std::size_t>(root)];
  while (parent_[static_cast<std::size_t>(v)] != root) {
    const NodeId next = parent_[static_cast<std::size_t>(v)];
    parent_[static_cast<std::size_t>(v)] = root;
    v = next;
  }
  return root;
}

bool DisjointSets::unite(NodeId a, NodeId b) {
  NodeId ra = find(a);
  NodeId rb = find(b);
  if (ra == rb) return false;
  if (size_[static_cast<std::size_t>(ra)] < size_[static_cast<std::size_t>(rb)])
    std::swap(ra, rb);
  parent_[static_cast<std::size_t>(rb)] = ra;
  size_[static_cast<std::size_t>(ra)] += size_[static_cast<std::size_t>(rb)];
  --num_sets_;
  return true;
}

std::vector<std::size_t> maximum_spanning_forest(
    std::size_t num_nodes, const std::vector<WeightedEdge>& edges) {
  std::vector<std::size_t> order(edges.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t i, std::size_t j) {
    return edges[i].weight > edges[j].weight;
  });

  DisjointSets sets(num_nodes);
  std::vector<std::size_t> chosen;
  chosen.reserve(num_nodes > 0 ? num_nodes - 1 : 0);
  for (std::size_t idx : order) {
    const WeightedEdge& e = edges[idx];
    assert(e.a >= 0 && static_cast<std::size_t>(e.a) < num_nodes);
    assert(e.b >= 0 && static_cast<std::size_t>(e.b) < num_nodes);
    if (sets.unite(e.a, e.b)) chosen.push_back(idx);
  }
  return chosen;
}

}  // namespace mebl::graph
