#pragma once

#include <cstdint>
#include <vector>

#include "graph/shortest_path.hpp"

namespace mebl::graph {

/// Minimum-cost maximum-flow solver (successive shortest augmenting paths
/// with Bellman–Ford potentials, then Dijkstra with reduced costs).
/// Supports negative arc costs as long as the graph has no negative cycle —
/// which is the case for the Carlisle–Lloyd interval-selection networks
/// where interval arcs carry cost = -weight.
class MinCostFlow {
 public:
  explicit MinCostFlow(std::size_t num_nodes = 0);

  /// Add a directed arc; returns an arc handle for flow queries.
  /// Capacities must be non-negative.
  std::size_t add_arc(NodeId from, NodeId to, std::int64_t capacity,
                      std::int64_t cost);

  struct Result {
    std::int64_t flow = 0;
    std::int64_t cost = 0;
  };

  /// Drop every arc and previous solve, keeping the allocated adjacency and
  /// search buffers, and resize to `num_nodes`. Lets one instance solve a
  /// sequence of networks (the per-round Carlisle–Lloyd flows of layer
  /// assignment) without reallocating per round. After reset the object
  /// behaves exactly like a freshly constructed one.
  void reset(std::size_t num_nodes);

  /// Push up to `flow_limit` units from s to t at minimum total cost.
  /// May be called once per instance (or once per reset()).
  Result solve(NodeId s, NodeId t, std::int64_t flow_limit);

  /// Flow currently assigned to the arc returned by add_arc.
  [[nodiscard]] std::int64_t flow_on(std::size_t arc_handle) const;

  [[nodiscard]] std::size_t num_nodes() const noexcept { return num_nodes_; }

 private:
  struct Arc {
    NodeId to;
    std::int64_t capacity;  // residual capacity
    std::int64_t cost;
    std::size_t reverse;  // index of the reverse arc in graph_[to]
  };

  // graph_ may keep more (empty) adjacency slots than num_nodes_ so reset()
  // can shrink without freeing per-node capacity.
  std::size_t num_nodes_ = 0;
  std::vector<std::vector<Arc>> graph_;
  struct ArcRef {
    NodeId node;
    std::size_t index;
    std::int64_t original_capacity;
  };
  std::vector<ArcRef> handles_;

  // Reusable solve() buffers.
  std::vector<std::int64_t> potential_;
  std::vector<std::int64_t> dist_;
  std::vector<NodeId> prev_node_;
  std::vector<std::size_t> prev_arc_;
};

}  // namespace mebl::graph
