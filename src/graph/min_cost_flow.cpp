#include "graph/min_cost_flow.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>

namespace mebl::graph {

namespace {
constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;
}

MinCostFlow::MinCostFlow(std::size_t num_nodes)
    : num_nodes_(num_nodes), graph_(num_nodes) {}

void MinCostFlow::reset(std::size_t num_nodes) {
  if (graph_.size() < num_nodes) graph_.resize(num_nodes);
  for (std::size_t u = 0; u < std::max(num_nodes_, num_nodes); ++u)
    graph_[u].clear();
  num_nodes_ = num_nodes;
  handles_.clear();
}

std::size_t MinCostFlow::add_arc(NodeId from, NodeId to, std::int64_t capacity,
                                 std::int64_t cost) {
  assert(capacity >= 0);
  assert(from != to);
  auto& fwd_list = graph_[static_cast<std::size_t>(from)];
  auto& rev_list = graph_[static_cast<std::size_t>(to)];
  fwd_list.push_back(Arc{to, capacity, cost, rev_list.size()});
  rev_list.push_back(Arc{from, 0, -cost, fwd_list.size() - 1});
  handles_.push_back(ArcRef{from, fwd_list.size() - 1, capacity});
  return handles_.size() - 1;
}

MinCostFlow::Result MinCostFlow::solve(NodeId s, NodeId t,
                                       std::int64_t flow_limit) {
  const std::size_t n = num_nodes_;
  Result result;

  // Initial potentials via Bellman-Ford (handles negative arc costs).
  std::vector<std::int64_t>& potential = potential_;
  potential.assign(n, kInf);
  potential[static_cast<std::size_t>(s)] = 0;
  for (std::size_t round = 0; round + 1 < n || round == 0; ++round) {
    bool changed = false;
    for (std::size_t u = 0; u < n; ++u) {
      if (potential[u] >= kInf) continue;
      for (const Arc& arc : graph_[u]) {
        if (arc.capacity <= 0) continue;
        const std::int64_t nd = potential[u] + arc.cost;
        if (nd < potential[static_cast<std::size_t>(arc.to)]) {
          potential[static_cast<std::size_t>(arc.to)] = nd;
          changed = true;
        }
      }
    }
    if (!changed) break;
  }

  std::vector<std::int64_t>& dist = dist_;
  dist.resize(n);
  std::vector<NodeId>& prev_node = prev_node_;
  prev_node.resize(n);
  std::vector<std::size_t>& prev_arc = prev_arc_;
  prev_arc.resize(n);

  while (result.flow < flow_limit) {
    // Dijkstra with reduced costs.
    std::fill(dist.begin(), dist.end(), kInf);
    dist[static_cast<std::size_t>(s)] = 0;
    using Entry = std::pair<std::int64_t, NodeId>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
    heap.emplace(0, s);
    while (!heap.empty()) {
      const auto [d, u] = heap.top();
      heap.pop();
      if (d > dist[static_cast<std::size_t>(u)]) continue;
      for (std::size_t i = 0; i < graph_[static_cast<std::size_t>(u)].size(); ++i) {
        const Arc& arc = graph_[static_cast<std::size_t>(u)][i];
        if (arc.capacity <= 0 || potential[static_cast<std::size_t>(arc.to)] >= kInf)
          continue;
        const std::int64_t reduced =
            arc.cost + potential[static_cast<std::size_t>(u)] -
            potential[static_cast<std::size_t>(arc.to)];
        assert(reduced >= 0);
        const std::int64_t nd = d + reduced;
        if (nd < dist[static_cast<std::size_t>(arc.to)]) {
          dist[static_cast<std::size_t>(arc.to)] = nd;
          prev_node[static_cast<std::size_t>(arc.to)] = u;
          prev_arc[static_cast<std::size_t>(arc.to)] = i;
          heap.emplace(nd, arc.to);
        }
      }
    }
    if (dist[static_cast<std::size_t>(t)] >= kInf) break;  // t unreachable

    for (std::size_t v = 0; v < n; ++v)
      if (dist[v] < kInf) potential[v] += dist[v];

    // Find the bottleneck along the augmenting path.
    std::int64_t push = flow_limit - result.flow;
    for (NodeId v = t; v != s;
         v = prev_node[static_cast<std::size_t>(v)]) {
      const Arc& arc =
          graph_[static_cast<std::size_t>(prev_node[static_cast<std::size_t>(v)])]
                [prev_arc[static_cast<std::size_t>(v)]];
      push = std::min(push, arc.capacity);
    }
    // Apply it.
    for (NodeId v = t; v != s;
         v = prev_node[static_cast<std::size_t>(v)]) {
      Arc& arc =
          graph_[static_cast<std::size_t>(prev_node[static_cast<std::size_t>(v)])]
                [prev_arc[static_cast<std::size_t>(v)]];
      arc.capacity -= push;
      graph_[static_cast<std::size_t>(arc.to)][arc.reverse].capacity += push;
      result.cost += push * arc.cost;
    }
    result.flow += push;
  }
  return result;
}

std::int64_t MinCostFlow::flow_on(std::size_t arc_handle) const {
  const ArcRef& ref = handles_.at(arc_handle);
  const Arc& arc = graph_[static_cast<std::size_t>(ref.node)][ref.index];
  return ref.original_capacity - arc.capacity;
}

}  // namespace mebl::graph
