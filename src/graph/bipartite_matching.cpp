#include "graph/bipartite_matching.hpp"

#include <cassert>
#include <limits>

namespace mebl::graph {

// Classic O(n^3) Hungarian algorithm with row/column potentials.
// Implementation follows the standard 1-indexed formulation with a virtual
// row 0 used as the starting column anchor.
std::vector<std::size_t> min_weight_perfect_matching(
    const std::vector<std::vector<double>>& cost) {
  const std::size_t n = cost.size();
  if (n == 0) return {};
  for (const auto& row : cost) {
    assert(row.size() == n);
    (void)row;
  }
  constexpr double kInf = std::numeric_limits<double>::infinity();

  std::vector<double> u(n + 1, 0.0), v(n + 1, 0.0);
  std::vector<std::size_t> match_of_col(n + 1, 0);  // row matched to column j
  std::vector<std::size_t> way(n + 1, 0);

  for (std::size_t i = 1; i <= n; ++i) {
    match_of_col[0] = i;
    std::size_t j0 = 0;
    std::vector<double> minv(n + 1, kInf);
    std::vector<bool> used(n + 1, false);
    do {
      used[j0] = true;
      const std::size_t i0 = match_of_col[j0];
      double delta = kInf;
      std::size_t j1 = 0;
      for (std::size_t j = 1; j <= n; ++j) {
        if (used[j]) continue;
        const double cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (std::size_t j = 0; j <= n; ++j) {
        if (used[j]) {
          u[match_of_col[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (match_of_col[j0] != 0);
    // Augment along the alternating path.
    do {
      const std::size_t j1 = way[j0];
      match_of_col[j0] = match_of_col[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  std::vector<std::size_t> match_of_left(n);
  for (std::size_t j = 1; j <= n; ++j) match_of_left[match_of_col[j] - 1] = j - 1;
  return match_of_left;
}

double matching_weight(const std::vector<std::vector<double>>& cost,
                       const std::vector<std::size_t>& match_of_left) {
  double total = 0.0;
  for (std::size_t i = 0; i < match_of_left.size(); ++i)
    total += cost[i][match_of_left[i]];
  return total;
}

}  // namespace mebl::graph
