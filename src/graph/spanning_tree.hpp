#pragma once

#include <vector>

#include "graph/shortest_path.hpp"

namespace mebl::graph {

/// Undirected weighted edge for spanning-tree construction.
struct WeightedEdge {
  NodeId a;
  NodeId b;
  double weight;
};

/// Disjoint-set (union-find) with path compression and union by size.
class DisjointSets {
 public:
  explicit DisjointSets(std::size_t n);

  [[nodiscard]] NodeId find(NodeId v);
  /// Merge the sets of a and b; returns false if already joined.
  bool unite(NodeId a, NodeId b);
  [[nodiscard]] std::size_t num_sets() const noexcept { return num_sets_; }

 private:
  std::vector<NodeId> parent_;
  std::vector<std::int32_t> size_;
  std::size_t num_sets_;
};

/// Maximum spanning forest via Kruskal: returns indices into `edges` of the
/// chosen edges. Used by the baseline layer-assignment heuristic of [4],
/// which k-colors a maximum spanning tree of the segment conflict graph.
[[nodiscard]] std::vector<std::size_t> maximum_spanning_forest(
    std::size_t num_nodes, const std::vector<WeightedEdge>& edges);

}  // namespace mebl::graph
