#include "graph/dag_longest_path.hpp"

#include <cassert>

namespace mebl::graph {

void Dag::add_arc(NodeId from, NodeId to, std::int64_t length) {
  assert(from >= 0 && static_cast<std::size_t>(from) < adj_.size());
  assert(to >= 0 && static_cast<std::size_t>(to) < adj_.size());
  adj_[static_cast<std::size_t>(from)].push_back(Arc{to, length});
}

std::optional<std::vector<std::optional<std::int64_t>>> Dag::longest_from(
    NodeId source) const {
  const std::size_t n = adj_.size();
  // Iterative DFS topological order restricted to nodes reachable from
  // source, with cycle detection via colors.
  enum class Color : unsigned char { kWhite, kGray, kBlack };
  std::vector<Color> color(n, Color::kWhite);
  std::vector<NodeId> order;  // reverse-topological
  order.reserve(n);

  struct Frame {
    NodeId node;
    std::size_t next_arc;
  };
  std::vector<Frame> stack;
  stack.push_back({source, 0});
  color[static_cast<std::size_t>(source)] = Color::kGray;
  while (!stack.empty()) {
    Frame& frame = stack.back();
    const auto& arcs = adj_[static_cast<std::size_t>(frame.node)];
    if (frame.next_arc < arcs.size()) {
      const NodeId next = arcs[frame.next_arc++].to;
      switch (color[static_cast<std::size_t>(next)]) {
        case Color::kWhite:
          color[static_cast<std::size_t>(next)] = Color::kGray;
          stack.push_back({next, 0});
          break;
        case Color::kGray:
          return std::nullopt;  // cycle
        case Color::kBlack:
          break;
      }
    } else {
      color[static_cast<std::size_t>(frame.node)] = Color::kBlack;
      order.push_back(frame.node);
      stack.pop_back();
    }
  }

  std::vector<std::optional<std::int64_t>> dist(n);
  dist[static_cast<std::size_t>(source)] = 0;
  // Relax in topological order (reverse of the post-order we collected).
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId u = *it;
    const auto du = dist[static_cast<std::size_t>(u)];
    if (!du) continue;
    for (const Arc& arc : adj_[static_cast<std::size_t>(u)]) {
      auto& dv = dist[static_cast<std::size_t>(arc.to)];
      const std::int64_t candidate = *du + arc.length;
      if (!dv || candidate > *dv) dv = candidate;
    }
  }
  return dist;
}

}  // namespace mebl::graph
