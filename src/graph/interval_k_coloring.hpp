#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "geom/interval.hpp"

namespace mebl::graph {

/// A weighted interval for the Carlisle–Lloyd k-colorable subset problem.
struct WeightedInterval {
  geom::Interval span;  // closed interval in track units
  double weight = 0.0;
};

/// Result of max-weight k-colorable subset selection: the chosen interval
/// indices and a color in [0, k) for each chosen interval such that
/// same-colored intervals are pairwise disjoint.
struct KColorableSubset {
  std::vector<std::size_t> chosen;  // indices into the input vector
  std::vector<int> color_of_chosen;  // parallel to `chosen`
  double total_weight = 0.0;
};

/// Reusable buffers for max_weight_k_colorable_subset: the flow network,
/// the coordinate-compression table and the chain-decomposition lists.
/// Layer assignment calls the selection once per round of its iterative
/// heuristic; threading one scratch through the loop removes every
/// per-round allocation. A scratch is single-owner state — share one per
/// worker, never across threads.
class KColoringScratch {
 public:
  KColoringScratch();
  ~KColoringScratch();
  KColoringScratch(KColoringScratch&&) noexcept;
  KColoringScratch& operator=(KColoringScratch&&) noexcept;

  struct Impl;
  [[nodiscard]] Impl& impl() noexcept { return *impl_; }

 private:
  std::unique_ptr<Impl> impl_;
};

/// Carlisle–Lloyd: maximum-weight k-colorable subset of intervals, solved
/// exactly with min-cost flow on the coordinate-compressed line network
/// (paper SIII-B cites [2]; this is the polynomial-time core of our layer
/// assignment heuristic).
///
/// Weights must be non-negative. Two intervals conflict when they share an
/// integer point (closed-interval overlap). The two overloads compute the
/// same result; the scratch form reuses the caller's buffers.
[[nodiscard]] KColorableSubset max_weight_k_colorable_subset(
    const std::vector<WeightedInterval>& intervals, int k);
[[nodiscard]] KColorableSubset max_weight_k_colorable_subset(
    const std::vector<WeightedInterval>& intervals, int k,
    KColoringScratch& scratch);

}  // namespace mebl::graph
