#include "graph/interval_k_coloring.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "graph/min_cost_flow.hpp"

namespace mebl::graph {

namespace {
// Fixed-point scale for converting double weights to the integer costs the
// min-cost-flow solver needs. 2^20 keeps three significant decimal digits
// for weights up to ~2^23 without overflow in the flow network.
constexpr std::int64_t kScale = 1 << 20;
}  // namespace

// One source->sink step of the flow decomposition:
// (next node, interval index or -1 for a line arc, remaining units).
struct KColoringScratch::Impl {
  struct Hop {
    NodeId to;
    std::ptrdiff_t interval;  // -1 for a line arc
    std::int64_t units;
  };

  std::vector<geom::Coord> coords;
  MinCostFlow flow;
  std::vector<std::size_t> arc_of_interval;
  std::vector<std::vector<Hop>> hops;  // first coords.size() slots valid
};

KColoringScratch::KColoringScratch() : impl_(std::make_unique<Impl>()) {}
KColoringScratch::~KColoringScratch() = default;
KColoringScratch::KColoringScratch(KColoringScratch&&) noexcept = default;
KColoringScratch& KColoringScratch::operator=(KColoringScratch&&) noexcept =
    default;

KColorableSubset max_weight_k_colorable_subset(
    const std::vector<WeightedInterval>& intervals, int k,
    KColoringScratch& scratch) {
  assert(k >= 1);
  KColorableSubset result;
  if (intervals.empty()) return result;
  KColoringScratch::Impl& s = scratch.impl();
  using Hop = KColoringScratch::Impl::Hop;

  // Coordinate-compress {lo, hi+1} of every interval; consecutive
  // coordinates become the "line" arcs of capacity k.
  std::vector<geom::Coord>& coords = s.coords;
  coords.clear();
  coords.reserve(intervals.size() * 2);
  for (const auto& iv : intervals) {
    assert(!iv.span.empty());
    assert(iv.weight >= 0.0);
    coords.push_back(iv.span.lo);
    coords.push_back(iv.span.hi + 1);
  }
  std::sort(coords.begin(), coords.end());
  coords.erase(std::unique(coords.begin(), coords.end()), coords.end());
  const auto node_of = [&](geom::Coord c) {
    return static_cast<NodeId>(
        std::lower_bound(coords.begin(), coords.end(), c) - coords.begin());
  };

  const std::size_t n = coords.size();
  MinCostFlow& flow = s.flow;
  flow.reset(n);
  // Line arcs let unused color slots pass over every point.
  for (std::size_t i = 0; i + 1 < n; ++i)
    flow.add_arc(static_cast<NodeId>(i), static_cast<NodeId>(i + 1), k, 0);
  // Interval arcs: selecting interval i routes one unit across its span and
  // "earns" its weight (negative cost).
  std::vector<std::size_t>& arc_of_interval = s.arc_of_interval;
  arc_of_interval.resize(intervals.size());
  for (std::size_t i = 0; i < intervals.size(); ++i) {
    const auto& iv = intervals[i];
    arc_of_interval[i] =
        flow.add_arc(node_of(iv.span.lo), node_of(iv.span.hi + 1), 1,
                     -static_cast<std::int64_t>(std::llround(iv.weight * kScale)));
  }

  flow.solve(0, static_cast<NodeId>(n - 1), k);

  // Decompose the flow into k source->sink chains; each chain is one color
  // class (intervals on the same chain are disjoint by construction).
  std::vector<std::vector<Hop>>& hops = s.hops;
  if (hops.size() < n) hops.resize(n);
  for (std::size_t i = 0; i < n; ++i) hops[i].clear();
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const std::int64_t f = flow.flow_on(i);  // line arcs were added first
    if (f > 0)
      hops[i].push_back(Hop{static_cast<NodeId>(i + 1), -1, f});
  }
  for (std::size_t i = 0; i < intervals.size(); ++i) {
    if (flow.flow_on(arc_of_interval[i]) > 0) {
      hops[static_cast<std::size_t>(node_of(intervals[i].span.lo))].push_back(
          Hop{node_of(intervals[i].span.hi + 1),
              static_cast<std::ptrdiff_t>(i), 1});
    }
  }

  for (int color = 0; color < k; ++color) {
    NodeId at = 0;
    while (static_cast<std::size_t>(at) + 1 < n) {
      auto& out = hops[static_cast<std::size_t>(at)];
      // Prefer interval hops so every selected interval lands on some chain.
      auto it = std::find_if(out.begin(), out.end(),
                             [](const Hop& h) { return h.interval >= 0; });
      if (it == out.end())
        it = std::find_if(out.begin(), out.end(),
                          [](const Hop& h) { return h.units > 0; });
      assert(it != out.end());  // conservation guarantees a way forward
      if (it->interval >= 0) {
        const auto idx = static_cast<std::size_t>(it->interval);
        result.chosen.push_back(idx);
        result.color_of_chosen.push_back(color);
        result.total_weight += intervals[idx].weight;
      }
      const NodeId next = it->to;
      if (--it->units == 0) out.erase(it);
      at = next;
    }
  }
  return result;
}

KColorableSubset max_weight_k_colorable_subset(
    const std::vector<WeightedInterval>& intervals, int k) {
  KColoringScratch scratch;
  return max_weight_k_colorable_subset(intervals, k, scratch);
}

}  // namespace mebl::graph
