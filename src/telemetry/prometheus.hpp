#pragma once

// Prometheus text-exposition rendering of the telemetry registry
// (DESIGN.md §14). Naming scheme: every metric is the registry name with
// '.' (and any other character outside [a-zA-Z0-9_:]) mapped to '_' and a
// `mebl_` prefix, so `serve.queue.wait_ns` scrapes as
// `mebl_serve_queue_wait_ns`. Counters render as Prometheus counters,
// histograms as summaries (p50/p95/p99 quantile lines from
// HistogramSnapshot plus `_sum`/`_count`), and caller-supplied gauges —
// point-in-time values like queue depth that are not monotonic counters —
// as gauges with optional labels. Output is deterministic: registries are
// name-sorted, gauges keep caller order, and numbers use fixed formatting.

#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mebl::telemetry {

/// A point-in-time value the caller owns (the registry only holds monotonic
/// counters and histograms). `name` uses registry spelling ("serve.queue.
/// depth"); labels are raw values, escaped during rendering.
struct PrometheusGauge {
  std::string name;
  double value = 0.0;
  std::vector<std::pair<std::string, std::string>> labels;
};

/// Registry name -> Prometheus metric name (sanitize + `mebl_` prefix).
[[nodiscard]] std::string prometheus_metric_name(std::string_view name);

/// Label-value escaping per the exposition format: backslash, double quote
/// and newline become \\, \" and \n.
[[nodiscard]] std::string prometheus_escape_label(std::string_view value);

/// Render the full registry (every counter and histogram) plus `gauges`.
void write_prometheus(std::ostream& out,
                      const std::vector<PrometheusGauge>& gauges = {});
[[nodiscard]] std::string prometheus_text(
    const std::vector<PrometheusGauge>& gauges = {});

}  // namespace mebl::telemetry
