#pragma once

// Canonical telemetry counter / histogram names used by the routing
// pipeline, so producers (stages) and consumers (stats dumps, benches,
// tests) agree on spelling. Stage code may still mint ad-hoc names; the
// ones here are the documented, stable surface.

#include <string_view>

namespace mebl::telemetry::keys {

// global routing
inline constexpr char kGlobalRerouted[] = "global.reroute.subnets";
inline constexpr char kGlobalReroutePasses[] = "global.reroute.passes";
inline constexpr char kGlobalWirelength[] = "global.wirelength";
inline constexpr char kGlobalVertexOverflow[] = "global.overflow.vertex_total";
inline constexpr char kGlobalVertexOverflowMax[] = "global.overflow.vertex_max";
inline constexpr char kGlobalEdgeOverflow[] = "global.overflow.edge_total";

// global-routing search kernel (DESIGN.md §10). Pops and pattern hits are
// functions of the routing order and congestion state alone — never of the
// thread count — so they stay byte-identical in canonical run reports
// across --threads. Scratch reuses count per-worker warm starts and DO vary
// with the thread count; execution_dependent() below excludes them from the
// canonical report form alongside the *_ns timings.
inline constexpr char kGlobalSearchPops[] = "global.search.pops";
inline constexpr char kGlobalPatternHits[] = "global.search.pattern_hits";
inline constexpr char kGlobalScratchReuses[] = "global.search.scratch_reuses";

// multilevel coarsen–route–refine pass (DESIGN.md §15). All three are
// functions of the subnet set and congestion state alone — the coarse pass
// is sequential and each corridor outcome is per-subnet deterministic — so
// they stay in canonical reports across --threads.
inline constexpr char kMlCoarseNets[] = "global.ml.coarse_nets";
inline constexpr char kMlCorridorHits[] = "global.ml.corridor_hits";
inline constexpr char kMlCorridorFallbacks[] = "global.ml.corridor_fallbacks";

// grid storage (DESIGN.md §15). Describes the *representation* (how many
// tiles the sparse storage materialized, how many bytes it holds), not the
// routed result: the dense and tiled modes produce byte-identical routing
// but different grid.* values, so the whole prefix is execution-dependent —
// canonical report bytes stay invariant under the storage switch.
inline constexpr char kGridTilesMaterialized[] = "grid.tiles_materialized";
inline constexpr char kGridTilesTotal[] = "grid.tiles_total";
inline constexpr char kGridStorageBytes[] = "grid.storage_bytes";

// layer assignment
inline constexpr char kLayerPanels[] = "assign.layer.panels";

// track assignment. Panel counts, bad ends and rip-ups are functions of the
// routing decisions alone and stay in canonical reports. The ILP *search
// effort* counters are not: where a wall-clock deadline cuts a solve off is
// machine-dependent (fallbacks, budget hits), and under cross-subproblem
// incumbent sharing the node count varies with thread interleaving even
// though the solution does not. execution_dependent() below excludes all
// three so canonical report bytes keep their cross-thread identity.
inline constexpr char kTrackPanels[] = "assign.track.panels";
inline constexpr char kTrackIlpNodes[] = "assign.track.ilp_nodes";
inline constexpr char kTrackIlpNs[] = "assign.track.ilp_ns";
inline constexpr char kTrackIlpFallbacks[] = "assign.track.ilp_fallbacks";
inline constexpr char kTrackIlpBudgetHits[] = "assign.track.ilp_budget_hits";
inline constexpr char kTrackBadEnds[] = "assign.track.bad_ends";
inline constexpr char kTrackRipped[] = "assign.track.ripped";

// detailed routing
inline constexpr char kAstarSearches[] = "detail.astar.searches";
inline constexpr char kAstarExpansions[] = "detail.astar.expansions";
inline constexpr char kRipupRescued[] = "detail.ripup.rescued";
inline constexpr char kRipupVictims[] = "detail.ripup.victims";
inline constexpr char kSpCleanupNets[] = "detail.sp_cleanup.nets";
inline constexpr char kSubnetsRealized[] = "detail.subnets.realized";
inline constexpr char kSubnetsPattern[] = "detail.subnets.pattern";
inline constexpr char kSubnetsAstar[] = "detail.subnets.astar";
inline constexpr char kSubnetsFailed[] = "detail.subnets.failed";

// detailed-routing parallelism (DESIGN.md §9). All of these are functions
// of the routing order and search boxes alone — never of the thread count —
// so they stay byte-identical in canonical run reports across --threads.
inline constexpr char kDetailBatches[] = "detail.parallel.batches";
inline constexpr char kDetailBatchedSubnets[] = "detail.parallel.batched_subnets";
inline constexpr char kDetailSequentialSubnets[] =
    "detail.parallel.sequential_subnets";
inline constexpr char kDetailEscalations[] = "detail.parallel.escalations";
inline constexpr char kDetailRecomputed[] = "detail.parallel.recomputed";

// evaluation — the paper's quality metrics as stable counter names, recorded
// inside the metrics stage so stage-boundary observers (report builders) see
// them in that stage's delta and in RoutingResult::stats().
inline constexpr char kShortPolygons[] = "eval.short_polygons";
inline constexpr char kViaViolations[] = "eval.via_violations";
inline constexpr char kVerticalViolations[] = "eval.vertical_violations";
inline constexpr char kWirelength[] = "eval.wirelength";
inline constexpr char kVias[] = "eval.vias";
inline constexpr char kRoutedNets[] = "eval.routed_nets";
inline constexpr char kTotalNets[] = "eval.total_nets";

// histograms
inline constexpr char kAstarSearchNs[] = "detail.astar.search_ns";
inline constexpr char kDetailBatchNs[] = "detail.parallel.batch_ns";
inline constexpr char kTrackPanelNs[] = "assign.track.panel_ns";

// serving layer (DESIGN.md §14). All serve.* keys describe daemon traffic —
// how many requests arrived, how long jobs waited and ran — never routing
// decisions, so every one of them is execution-dependent and excluded from
// canonical report bytes by prefix below.
inline constexpr char kServeRequests[] = "serve.requests.decoded";
inline constexpr char kServeMalformed[] = "serve.requests.malformed";
inline constexpr char kServeJobsRoute[] = "serve.jobs.route";
inline constexpr char kServeJobsEco[] = "serve.jobs.eco";
inline constexpr char kServeEcoFallbackFull[] = "serve.jobs.eco_fallback_full";
inline constexpr char kServeJobsFailed[] = "serve.jobs.failed";
inline constexpr char kServeJobsCancelled[] = "serve.jobs.cancelled";
inline constexpr char kServeSlowJobs[] = "serve.jobs.slow";
/// Jobs whose deadline had already expired when a lane picked them up:
/// rejected with a structured deadline_exceeded error, never started.
inline constexpr char kServeDeadlineRejected[] =
    "serve.jobs.deadline_rejected";
/// ECO requests absorbed into a coalesced batch (batch size minus one per
/// batch): how many rip-up/reroute applies lane batching saved.
inline constexpr char kServeEcoCoalesced[] = "serve.eco.coalesced";
// serving-layer histograms (queue wait + per-kind job latency)
inline constexpr char kServeQueueWaitNs[] = "serve.queue.wait_ns";
inline constexpr char kServeJobNs[] = "serve.job.total_ns";
inline constexpr char kServeRouteNs[] = "serve.job.route_ns";
inline constexpr char kServeEcoNs[] = "serve.job.eco_ns";

// exec pool. Steal counts and idle wake-ups are scheduling accidents —
// pure functions of thread timing, never of routing output — so the whole
// exec.pool.* prefix is execution-dependent.
inline constexpr char kExecSteals[] = "exec.pool.steals";
inline constexpr char kExecChunksRun[] = "exec.pool.chunks_run";
inline constexpr char kExecIdleWakeups[] = "exec.pool.idle_wakeups";

// telemetry self-observation
inline constexpr char kTraceDroppedSpans[] = "telemetry.trace.dropped_spans";
inline constexpr char kFlightDroppedEvents[] =
    "telemetry.flight.dropped_events";

/// Counters that measure the execution environment (wall-clock timings,
/// per-worker cache warm starts, where a deadline or a shared-incumbent
/// search happened to be cut off, serving-layer traffic, pool scheduling,
/// grid-storage representation, telemetry self-observation) rather than
/// routing decisions: their values legitimately vary with the thread count,
/// the machine, or the storage mode, so the canonical (include_timing =
/// false) run-report form excludes them to keep its cross-thread /
/// cross-representation byte-identity contract (DESIGN.md §8, §15).
[[nodiscard]] inline bool execution_dependent(std::string_view name) {
  return name.ends_with("_ns") || name == kGlobalScratchReuses ||
         name == kTrackIlpNodes || name == kTrackIlpFallbacks ||
         name == kTrackIlpBudgetHits || name.starts_with("serve.") ||
         name.starts_with("exec.pool.") || name.starts_with("grid.") ||
         name.starts_with("telemetry.");
}

}  // namespace mebl::telemetry::keys
