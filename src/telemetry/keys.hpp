#pragma once

// Canonical telemetry counter / histogram names used by the routing
// pipeline, so producers (stages) and consumers (stats dumps, benches,
// tests) agree on spelling. Stage code may still mint ad-hoc names; the
// ones here are the documented, stable surface.

namespace mebl::telemetry::keys {

// global routing
inline constexpr char kGlobalRerouted[] = "global.reroute.subnets";
inline constexpr char kGlobalReroutePasses[] = "global.reroute.passes";

// layer assignment
inline constexpr char kLayerPanels[] = "assign.layer.panels";

// track assignment
inline constexpr char kTrackPanels[] = "assign.track.panels";
inline constexpr char kTrackIlpNodes[] = "assign.track.ilp_nodes";
inline constexpr char kTrackIlpNs[] = "assign.track.ilp_ns";
inline constexpr char kTrackIlpFallbacks[] = "assign.track.ilp_fallbacks";
inline constexpr char kTrackBadEnds[] = "assign.track.bad_ends";
inline constexpr char kTrackRipped[] = "assign.track.ripped";

// detailed routing
inline constexpr char kAstarSearches[] = "detail.astar.searches";
inline constexpr char kAstarExpansions[] = "detail.astar.expansions";
inline constexpr char kRipupRescued[] = "detail.ripup.rescued";
inline constexpr char kRipupVictims[] = "detail.ripup.victims";
inline constexpr char kSpCleanupNets[] = "detail.sp_cleanup.nets";
inline constexpr char kSubnetsRealized[] = "detail.subnets.realized";
inline constexpr char kSubnetsPattern[] = "detail.subnets.pattern";
inline constexpr char kSubnetsAstar[] = "detail.subnets.astar";
inline constexpr char kSubnetsFailed[] = "detail.subnets.failed";

// evaluation
inline constexpr char kShortPolygons[] = "eval.short_polygons";
inline constexpr char kViaViolations[] = "eval.via_violations";

// histograms
inline constexpr char kAstarSearchNs[] = "detail.astar.search_ns";
inline constexpr char kTrackPanelNs[] = "assign.track.panel_ns";

}  // namespace mebl::telemetry::keys
