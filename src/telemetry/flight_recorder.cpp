#include "telemetry/flight_recorder.hpp"

#include <fcntl.h>
#include <signal.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cstring>
#include <fstream>
#include <ostream>

#include "telemetry/keys.hpp"

namespace mebl::telemetry {

namespace internal {
std::atomic<bool> g_flight_enabled{false};
}  // namespace internal

namespace {

// One recorded event. Every field is an atomic written with relaxed stores
// and published by the trailing release store of `seq`; readers (including
// the signal handler) use acquire loads and a seq re-check, so there is no
// lock anywhere and no undefined racing on the slot bytes.
struct Slot {
  std::atomic<std::uint64_t> seq{0};  // 0 = empty / being (re)written
  std::atomic<const char*> name{nullptr};
  std::atomic<std::uint8_t> kind{0};
  std::atomic<std::uint32_t> tid{0};
  std::atomic<std::uint64_t> start_ns{0};
  std::atomic<std::uint64_t> dur_ns{0};
  std::atomic<std::uint64_t> req{0};
  std::array<std::atomic<char>, FlightRecorder::kTextBytes> text{};
};

struct Ring {
  std::atomic<std::uint64_t> count{0};  // events ever written to this ring
  std::array<Slot, FlightRecorder::kSlotsPerThread> slots{};
};

Ring g_rings[FlightRecorder::kMaxThreads];
std::atomic<std::uint32_t> g_ring_count{0};
std::atomic<std::uint64_t> g_seq{0};

// -2 = not assigned yet, -1 = no ring available (thread #65+).
thread_local int t_ring = -2;

int ring_index() noexcept {
  if (t_ring == -2) {
    const std::uint32_t idx = g_ring_count.fetch_add(1, std::memory_order_relaxed);
    t_ring = idx < FlightRecorder::kMaxThreads ? static_cast<int>(idx) : -1;
  }
  return t_ring;
}

void record_event(std::uint8_t kind, const char* name, std::uint32_t tid,
                  std::uint64_t start_ns, std::uint64_t dur_ns,
                  std::uint64_t req, const char* text,
                  std::size_t text_len) noexcept {
  const int ring_idx = ring_index();
  if (ring_idx < 0) {
    static Counter& dropped = counter(keys::kFlightDroppedEvents);
    dropped.add(1);
    return;
  }
  Ring& ring = g_rings[ring_idx];
  const std::uint64_t n = ring.count.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = ring.slots[n % FlightRecorder::kSlotsPerThread];
  const std::uint64_t seq = g_seq.fetch_add(1, std::memory_order_relaxed) + 1;
  slot.seq.store(0, std::memory_order_release);  // readers skip mid-write
  slot.name.store(name, std::memory_order_relaxed);
  slot.kind.store(kind, std::memory_order_relaxed);
  slot.tid.store(tid, std::memory_order_relaxed);
  slot.start_ns.store(start_ns, std::memory_order_relaxed);
  slot.dur_ns.store(dur_ns, std::memory_order_relaxed);
  slot.req.store(req, std::memory_order_relaxed);
  const std::size_t copy =
      std::min(text_len, FlightRecorder::kTextBytes - 1);
  for (std::size_t i = 0; i < copy; ++i)
    slot.text[i].store(text[i], std::memory_order_relaxed);
  slot.text[copy].store('\0', std::memory_order_relaxed);
  slot.seq.store(seq, std::memory_order_release);
}

// Stack-only decoded slot, safe to build inside a signal handler (the
// public Event carries std::string, which allocates).
struct RawEvent {
  std::uint64_t seq = 0;
  std::uint8_t kind = 0;
  const char* name = nullptr;
  std::uint32_t tid = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint64_t req = 0;
  char text[FlightRecorder::kTextBytes] = {0};
  std::size_t text_len = 0;
  bool torn = false;
};

bool read_slot(const Slot& slot, RawEvent& out) noexcept {
  const std::uint64_t seq1 = slot.seq.load(std::memory_order_acquire);
  if (seq1 == 0) return false;
  out.seq = seq1;
  out.kind = slot.kind.load(std::memory_order_relaxed);
  out.name = slot.name.load(std::memory_order_relaxed);
  out.tid = slot.tid.load(std::memory_order_relaxed);
  out.start_ns = slot.start_ns.load(std::memory_order_relaxed);
  out.dur_ns = slot.dur_ns.load(std::memory_order_relaxed);
  out.req = slot.req.load(std::memory_order_relaxed);
  out.text_len = 0;
  for (std::size_t i = 0; i < FlightRecorder::kTextBytes; ++i) {
    const char c = slot.text[i].load(std::memory_order_relaxed);
    if (c == '\0') break;
    out.text[out.text_len++] = c;
  }
  out.torn = slot.seq.load(std::memory_order_acquire) != seq1;
  return true;
}

// ------------------------- async-signal-safe formatting (stack only)

std::size_t format_u64(char* buf, std::uint64_t v) noexcept {
  char tmp[20];
  std::size_t n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  for (std::size_t i = 0; i < n; ++i) buf[i] = tmp[n - 1 - i];
  return n;
}

// Buffered fd writer built on write(2) alone.
class FdWriter {
 public:
  explicit FdWriter(int fd) noexcept : fd_(fd) {}
  ~FdWriter() { flush(); }

  void append(const char* s) noexcept {
    while (*s != '\0') put(*s++);
  }
  void append_n(const char* s, std::size_t n) noexcept {
    for (std::size_t i = 0; i < n; ++i) put(s[i]);
  }
  void append_u64(std::uint64_t v) noexcept {
    char buf[20];
    append_n(buf, format_u64(buf, v));
  }
  void flush() noexcept {
    std::size_t done = 0;
    while (done < used_) {
      const ssize_t n = ::write(fd_, buffer_ + done, used_ - done);
      if (n <= 0) break;
      done += static_cast<std::size_t>(n);
    }
    used_ = 0;
  }

 private:
  void put(char c) noexcept {
    if (used_ == sizeof buffer_) flush();
    buffer_[used_++] = c;
  }
  int fd_;
  char buffer_[512];
  std::size_t used_ = 0;
};

void write_event_line(FdWriter& out, const RawEvent& event) noexcept {
  out.append_u64(event.seq);
  out.append(" tid=");
  out.append_u64(event.tid);
  out.append(" req=");
  out.append_u64(event.req);
  if (event.kind ==
      static_cast<std::uint8_t>(FlightRecorder::Event::Kind::kLog)) {
    out.append(" log ");
    out.append(event.name != nullptr ? event.name : "?");
    out.append(" ts_ns=");
    out.append_u64(event.start_ns);
    out.append(" ");
    out.append_n(event.text, event.text_len);
  } else {
    out.append(" span ");
    out.append(event.name != nullptr ? event.name : "?");
    out.append(" start_ns=");
    out.append_u64(event.start_ns);
    out.append(" dur_ns=");
    out.append_u64(event.dur_ns);
  }
  if (event.torn) out.append(" [torn]");
  out.append("\n");
}

// Crash-handler state: prefix copied at install time so the handler never
// touches std::string.
char g_crash_prefix[200] = {0};
std::atomic<bool> g_handlers_installed{false};
constexpr int kCrashSignals[] = {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL};

std::uint64_t realtime_ns() noexcept {
  timespec ts{};
  ::clock_gettime(CLOCK_REALTIME, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

// Builds `<prefix>_<pid>_<ns>.log` into buf; returns length. Signal-safe.
std::size_t build_dump_path(char* buf, std::size_t cap,
                            const char* prefix) noexcept {
  std::size_t n = 0;
  for (const char* p = prefix; *p != '\0' && n + 48 < cap; ++p) buf[n++] = *p;
  buf[n++] = '_';
  n += format_u64(buf + n, static_cast<std::uint64_t>(::getpid()));
  buf[n++] = '_';
  n += format_u64(buf + n, realtime_ns());
  for (const char* p = ".log"; *p != '\0'; ++p) buf[n++] = *p;
  buf[n] = '\0';
  return n;
}

extern "C" void mebl_flight_crash_handler(int sig) {
  char path[320];
  const std::size_t path_len =
      build_dump_path(path, sizeof path, g_crash_prefix);
  const int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd >= 0) {
    FlightRecorder::dump_to_fd(fd, sig);
    ::close(fd);
    const char* msg = "mebl flight recorder: dumped to ";
    (void)!::write(2, msg, ::strlen(msg));
    (void)!::write(2, path, path_len);
    (void)!::write(2, "\n", 1);
  }
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

}  // namespace

namespace internal {

void flight_record_span(const SpanEvent& event) noexcept {
  record_event(static_cast<std::uint8_t>(FlightRecorder::Event::Kind::kSpan),
               event.name, event.tid, event.start_ns, event.dur_ns, event.req,
               nullptr, 0);
}

}  // namespace internal

void FlightRecorder::enable() noexcept {
  internal::g_flight_enabled.store(true, std::memory_order_relaxed);
}

void FlightRecorder::disable() noexcept {
  internal::g_flight_enabled.store(false, std::memory_order_relaxed);
}

void FlightRecorder::record_log(const char* level_tag,
                                std::string_view message) noexcept {
  if (!enabled()) return;
  record_event(static_cast<std::uint8_t>(Event::Kind::kLog), level_tag,
               internal::thread_tid(), now_ns(), 0, current_request(),
               message.data(), message.size());
}

std::vector<FlightRecorder::Event> FlightRecorder::snapshot() {
  std::vector<Event> out;
  const std::uint32_t rings =
      std::min<std::uint32_t>(g_ring_count.load(std::memory_order_relaxed),
                              static_cast<std::uint32_t>(kMaxThreads));
  for (std::uint32_t r = 0; r < rings; ++r) {
    const Ring& ring = g_rings[r];
    const std::uint64_t count = ring.count.load(std::memory_order_acquire);
    const std::uint64_t first =
        count > kSlotsPerThread ? count - kSlotsPerThread : 0;
    for (std::uint64_t i = first; i < count; ++i) {
      RawEvent raw;
      if (!read_slot(ring.slots[i % kSlotsPerThread], raw)) continue;
      Event event;
      event.seq = raw.seq;
      event.kind = static_cast<Event::Kind>(raw.kind);
      event.name = raw.name;
      event.tid = raw.tid;
      event.start_ns = raw.start_ns;
      event.dur_ns = raw.dur_ns;
      event.req = raw.req;
      event.text.assign(raw.text, raw.text_len);
      event.torn = raw.torn;
      out.push_back(std::move(event));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Event& a, const Event& b) { return a.seq < b.seq; });
  return out;
}

void FlightRecorder::dump(std::ostream& out) {
  const std::vector<Event> events = snapshot();
  out << "# mebl flight recorder v1 pid=" << ::getpid()
      << " events=" << events.size() << "\n";
  for (const Event& event : events) {
    out << event.seq << " tid=" << event.tid << " req=" << event.req;
    if (event.kind == Event::Kind::kLog) {
      out << " log " << (event.name != nullptr ? event.name : "?")
          << " ts_ns=" << event.start_ns << " " << event.text;
    } else {
      out << " span " << (event.name != nullptr ? event.name : "?")
          << " start_ns=" << event.start_ns << " dur_ns=" << event.dur_ns;
    }
    if (event.torn) out << " [torn]";
    out << "\n";
  }
}

bool FlightRecorder::dump_to_file(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  dump(out);
  return out.good();
}

void FlightRecorder::dump_to_fd(int fd, int fatal_signal) noexcept {
  FdWriter out(fd);
  out.append("# mebl flight recorder v1 pid=");
  out.append_u64(static_cast<std::uint64_t>(::getpid()));
  out.append(" seq=");
  out.append_u64(g_seq.load(std::memory_order_relaxed));
  out.append("\n");
  if (fatal_signal > 0) {
    out.append("# fatal signal ");
    out.append_u64(static_cast<std::uint64_t>(fatal_signal));
    out.append("\n");
  }
  const std::uint32_t rings =
      std::min<std::uint32_t>(g_ring_count.load(std::memory_order_relaxed),
                              static_cast<std::uint32_t>(kMaxThreads));
  for (std::uint32_t r = 0; r < rings; ++r) {
    const Ring& ring = g_rings[r];
    const std::uint64_t count = ring.count.load(std::memory_order_acquire);
    const std::uint64_t first =
        count > kSlotsPerThread ? count - kSlotsPerThread : 0;
    for (std::uint64_t i = first; i < count; ++i) {
      RawEvent raw;
      if (read_slot(ring.slots[i % kSlotsPerThread], raw))
        write_event_line(out, raw);
    }
  }
  out.flush();
}

std::string FlightRecorder::timestamped_path(const std::string& prefix) {
  char buf[320];
  char safe_prefix[200];
  const std::size_t n = std::min(prefix.size(), sizeof safe_prefix - 1);
  std::memcpy(safe_prefix, prefix.data(), n);
  safe_prefix[n] = '\0';
  build_dump_path(buf, sizeof buf, safe_prefix);
  return std::string(buf);
}

void FlightRecorder::install_crash_handler(const std::string& path_prefix) {
  const std::size_t n =
      std::min(path_prefix.size(), sizeof g_crash_prefix - 1);
  std::memcpy(g_crash_prefix, path_prefix.data(), n);
  g_crash_prefix[n] = '\0';
  if (g_handlers_installed.exchange(true)) return;
  struct sigaction action{};
  action.sa_handler = &mebl_flight_crash_handler;
  ::sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  for (const int sig : kCrashSignals) ::sigaction(sig, &action, nullptr);
}

void FlightRecorder::reset_for_testing() {
  disable();
  const std::uint32_t rings =
      std::min<std::uint32_t>(g_ring_count.load(std::memory_order_relaxed),
                              static_cast<std::uint32_t>(kMaxThreads));
  for (std::uint32_t r = 0; r < rings; ++r) {
    for (Slot& slot : g_rings[r].slots)
      slot.seq.store(0, std::memory_order_relaxed);
    g_rings[r].count.store(0, std::memory_order_relaxed);
  }
  g_seq.store(0, std::memory_order_relaxed);
}

}  // namespace mebl::telemetry
