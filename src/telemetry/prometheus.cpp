#include "telemetry/prometheus.hpp"

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "telemetry/telemetry.hpp"

namespace mebl::telemetry {

namespace {

bool valid_metric_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == ':';
}

/// Deterministic number formatting: integers (the common case — counter
/// values, nanosecond quantiles) print exactly; everything else prints with
/// enough digits to round-trip.
void write_value(std::ostream& out, double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::abs(value) < 9.0e15) {
    out << static_cast<std::int64_t>(value);
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  out << buf;
}

void write_labels(
    std::ostream& out,
    const std::vector<std::pair<std::string, std::string>>& labels) {
  if (labels.empty()) return;
  out << '{';
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out << ',';
    out << key << "=\"" << prometheus_escape_label(value) << '"';
    first = false;
  }
  out << '}';
}

void write_summary(std::ostream& out, const std::string& metric,
                   const HistogramSnapshot& snapshot) {
  out << "# TYPE " << metric << " summary\n";
  static constexpr std::pair<const char*, double> kQuantiles[] = {
      {"0.5", 0.50}, {"0.95", 0.95}, {"0.99", 0.99}};
  for (const auto& [label, q] : kQuantiles) {
    out << metric << "{quantile=\"" << label << "\"} "
        << snapshot.quantile_ns(q) << '\n';
  }
  out << metric << "_sum " << snapshot.total_ns << '\n';
  out << metric << "_count " << snapshot.count << '\n';
}

}  // namespace

std::string prometheus_metric_name(std::string_view name) {
  std::string out = "mebl_";
  out.reserve(name.size() + out.size());
  for (const char c : name) out.push_back(valid_metric_char(c) ? c : '_');
  return out;
}

std::string prometheus_escape_label(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

void write_prometheus(std::ostream& out,
                      const std::vector<PrometheusGauge>& gauges) {
  for (const auto& [name, value] : snapshot_counters().counters) {
    const std::string metric = prometheus_metric_name(name);
    out << "# TYPE " << metric << " counter\n" << metric << ' ' << value
        << '\n';
  }
  for (const auto& [name, snapshot] : snapshot_histograms())
    write_summary(out, prometheus_metric_name(name), snapshot);
  for (const PrometheusGauge& gauge : gauges) {
    const std::string metric = prometheus_metric_name(gauge.name);
    out << "# TYPE " << metric << " gauge\n" << metric;
    write_labels(out, gauge.labels);
    out << ' ';
    write_value(out, gauge.value);
    out << '\n';
  }
}

std::string prometheus_text(const std::vector<PrometheusGauge>& gauges) {
  std::ostringstream out;
  write_prometheus(out, gauges);
  return out.str();
}

}  // namespace mebl::telemetry
