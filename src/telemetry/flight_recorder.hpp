#pragma once

// mebl::telemetry::FlightRecorder — a crash-surviving ring of recent
// span/log events, the serving layer's postmortem artifact (DESIGN.md §14).
//
// Every thread that records gets its own fixed-size ring of slots, so the
// hot path is wait-free and lock-free: claim the next slot from a
// thread-owned index, store the fields with relaxed atomics, publish the
// sequence number last with a release store. There are no mutexes anywhere
// on the write OR the read path, which is what makes dump_to_fd() safe to
// call from a fatal-signal handler: it walks the same atomics with acquire
// loads, formats integers into a stack buffer, and write(2)s the result.
// A reader racing a writer can observe a slot mid-overwrite; the sequence
// re-check marks such events torn rather than emitting garbage.
//
// The recorder is fed automatically once enabled: Span destructors and
// Tracer::record_span() forward every span (flight recording works even
// when the Perfetto tracer is off — the daemon's default), and util::Log
// forwards every emitted log line. Events carry the telemetry request tag,
// so a postmortem shows which request the daemon died under.

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/telemetry.hpp"

namespace mebl::telemetry {

class FlightRecorder {
 public:
  /// Threads beyond kMaxThreads are not recorded (counted in
  /// telemetry.flight.dropped_events); each recorded thread keeps its most
  /// recent kSlotsPerThread events. Log text beyond kTextBytes-1 is
  /// truncated.
  static constexpr std::size_t kMaxThreads = 64;
  static constexpr std::size_t kSlotsPerThread = 256;
  static constexpr std::size_t kTextBytes = 96;

  /// One decoded event, as returned by snapshot().
  struct Event {
    enum class Kind : std::uint8_t { kSpan = 1, kLog = 2 };
    std::uint64_t seq = 0;  ///< global record order (1, 2, ...)
    Kind kind = Kind::kSpan;
    const char* name = nullptr;  ///< span name, or log level tag
    std::uint32_t tid = 0;
    std::uint64_t start_ns = 0;
    std::uint64_t dur_ns = 0;  ///< 0 for log events
    std::uint64_t req = 0;     ///< request tag active at record time
    std::string text;          ///< log message (empty for spans)
    bool torn = false;         ///< overwritten while being read
  };

  static void enable() noexcept;
  static void disable() noexcept;
  [[nodiscard]] static bool enabled() noexcept {
    return internal::g_flight_enabled.load(std::memory_order_relaxed);
  }

  /// Record one log line (called by util::Log). No-op when disabled.
  static void record_log(const char* level_tag,
                         std::string_view message) noexcept;

  /// Decoded copy of every live slot, sorted by sequence number.
  [[nodiscard]] static std::vector<Event> snapshot();

  /// Human-readable dump: one `# mebl flight recorder v1 ...` header line,
  /// then one line per event in global record order.
  static void dump(std::ostream& out);
  [[nodiscard]] static bool dump_to_file(const std::string& path);

  /// Async-signal-safe dump (rings walked in thread order, lines carry seq
  /// for re-sorting). `fatal_signal` > 0 adds a `# fatal signal N` line.
  static void dump_to_fd(int fd, int fatal_signal = 0) noexcept;

  /// `<prefix>_<pid>_<realtime_ns>.log` — the naming scheme both the crash
  /// handler and the on-demand kDump request use.
  [[nodiscard]] static std::string timestamped_path(const std::string& prefix);

  /// Arm SIGSEGV/SIGABRT/SIGBUS/SIGFPE/SIGILL handlers that dump to
  /// timestamped_path(prefix), then re-raise with the default disposition
  /// so the process still dies with the original signal. The prefix is
  /// copied into static storage (truncated past ~200 bytes). Idempotent.
  static void install_crash_handler(const std::string& path_prefix);

  /// Drop all recorded events and disable the recorder (crash handlers
  /// stay installed). Ring ownership of threads that already recorded is
  /// kept — thread ids stay stable within a process.
  static void reset_for_testing();
};

}  // namespace mebl::telemetry
