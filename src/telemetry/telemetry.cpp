#include "telemetry/telemetry.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>
#include <ostream>

#include "telemetry/keys.hpp"

namespace mebl::telemetry {

namespace {

std::atomic<ClockFn> g_clock{nullptr};

// Registries use std::map for node stability: counter()/histogram() hand
// out references that must survive later insertions.
std::mutex g_registry_mutex;
std::map<std::string, Counter>& counter_registry() {
  static auto* registry = new std::map<std::string, Counter>();
  return *registry;
}
std::map<std::string, Histogram>& histogram_registry() {
  static auto* registry = new std::map<std::string, Histogram>();
  return *registry;
}

std::mutex g_events_mutex;
std::vector<SpanEvent>& event_buffer() {
  static auto* events = new std::vector<SpanEvent>();
  return *events;
}

constexpr std::size_t kDefaultTraceCapacity = std::size_t{1} << 18;
std::atomic<std::size_t> g_trace_capacity{kDefaultTraceCapacity};

// Thread-local so concurrent dispatch lanes keep independent tags; the
// exec pool hands it down to workers via exchange_request_tag() (see the
// RequestScope docs).
thread_local std::uint64_t t_request_tag = 0;

// Small dense thread ids (1, 2, ... in order of first span) keep traces and
// tests readable; std::thread::id hashes would churn between runs.
std::atomic<std::uint32_t> g_next_tid{1};
thread_local std::uint32_t t_tid = 0;
thread_local std::int32_t t_depth = 0;

std::uint32_t this_thread_tid() {
  if (t_tid == 0) t_tid = g_next_tid.fetch_add(1, std::memory_order_relaxed);
  return t_tid;
}

/// "ts":12.345 — microseconds with fixed 3-decimal (nanosecond) precision,
/// via integer math so output is byte-stable across platforms.
void write_us(std::ostream& out, std::uint64_t ns) {
  out << ns / 1000 << '.';
  const auto rem = static_cast<unsigned>(ns % 1000);
  out << static_cast<char>('0' + rem / 100)
      << static_cast<char>('0' + rem / 10 % 10)
      << static_cast<char>('0' + rem % 10);
}

}  // namespace

std::uint64_t now_ns() {
  if (const ClockFn clock = g_clock.load(std::memory_order_relaxed))
    return clock();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void set_clock_for_testing(ClockFn clock) {
  g_clock.store(clock, std::memory_order_relaxed);
}

namespace internal {

std::uint32_t thread_tid() noexcept { return this_thread_tid(); }

std::size_t counter_shard() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % Counter::kShards;
  return shard;
}

}  // namespace internal

Counter& counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(g_registry_mutex);
  return counter_registry()[std::string(name)];
}

void Histogram::record_ns(std::uint64_t ns) noexcept {
  count_.fetch_add(1, std::memory_order_relaxed);
  total_ns_.fetch_add(ns, std::memory_order_relaxed);
  const std::uint64_t us = ns / 1000;
  int bucket = 0;
  while (bucket + 1 < kBuckets && (1ull << bucket) <= us) ++bucket;
  buckets_[static_cast<std::size_t>(bucket)].fetch_add(
      1, std::memory_order_relaxed);
}

std::array<std::int64_t, Histogram::kBuckets> Histogram::buckets()
    const noexcept {
  std::array<std::int64_t, kBuckets> out{};
  for (int i = 0; i < kBuckets; ++i)
    out[static_cast<std::size_t>(i)] =
        buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
  return out;
}

Histogram& histogram(std::string_view name) {
  const std::lock_guard<std::mutex> lock(g_registry_mutex);
  return histogram_registry()[std::string(name)];
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) noexcept {
  count += other.count;
  total_ns += other.total_ns;
  for (int i = 0; i < Histogram::kBuckets; ++i)
    buckets[static_cast<std::size_t>(i)] +=
        other.buckets[static_cast<std::size_t>(i)];
}

std::uint64_t HistogramSnapshot::bucket_lower_ns(int bucket) noexcept {
  if (bucket <= 0) return 0;
  return (std::uint64_t{1} << (bucket - 1)) * 1000;
}

std::uint64_t HistogramSnapshot::bucket_upper_ns(int bucket) noexcept {
  if (bucket < 0) return 0;
  const int capped = std::min(bucket, Histogram::kBuckets - 1);
  return (std::uint64_t{1} << capped) * 1000;
}

std::uint64_t HistogramSnapshot::quantile_ns(double q) const noexcept {
  if (count <= 0) return 0;
  const double clamped = std::min(std::max(q, 0.0), 1.0);
  std::int64_t rank =
      static_cast<std::int64_t>(std::ceil(clamped * static_cast<double>(count)));
  rank = std::min(std::max(rank, std::int64_t{1}), count);
  std::int64_t cumulative = 0;
  for (int b = 0; b < Histogram::kBuckets; ++b) {
    const std::int64_t in_bucket = buckets[static_cast<std::size_t>(b)];
    if (in_bucket <= 0) continue;
    if (rank <= cumulative + in_bucket) {
      const std::uint64_t lower = bucket_lower_ns(b);
      const std::uint64_t upper = bucket_upper_ns(b);
      const std::int64_t position = rank - cumulative;  // 1..in_bucket
      return lower + (upper - lower) * static_cast<std::uint64_t>(position) /
                         static_cast<std::uint64_t>(in_bucket);
    }
    cumulative += in_bucket;
  }
  return bucket_upper_ns(Histogram::kBuckets - 1);
}

HistogramSnapshot snapshot_histogram(const Histogram& h) {
  HistogramSnapshot out;
  out.count = h.count();
  out.total_ns = h.total_ns();
  out.buckets = h.buckets();
  return out;
}

std::vector<std::pair<std::string, HistogramSnapshot>> snapshot_histograms() {
  std::vector<std::pair<std::string, HistogramSnapshot>> out;
  const std::lock_guard<std::mutex> lock(g_registry_mutex);
  out.reserve(histogram_registry().size());
  for (const auto& [name, histo] : histogram_registry())
    out.emplace_back(name, snapshot_histogram(histo));
  return out;  // std::map iteration is already name-sorted
}

RequestScope::RequestScope(std::uint64_t tag) noexcept
    : previous_(exchange_request_tag(tag)) {}

RequestScope::~RequestScope() { exchange_request_tag(previous_); }

std::uint64_t current_request() noexcept { return t_request_tag; }

std::uint64_t exchange_request_tag(std::uint64_t tag) noexcept {
  const std::uint64_t previous = t_request_tag;
  t_request_tag = tag;
  return previous;
}

std::int64_t StatsSnapshot::value(std::string_view name) const noexcept {
  const auto it = std::lower_bound(
      counters.begin(), counters.end(), name,
      [](const auto& entry, std::string_view key) { return entry.first < key; });
  return it != counters.end() && it->first == name ? it->second : 0;
}

StatsSnapshot snapshot_counters() {
  StatsSnapshot snapshot;
  const std::lock_guard<std::mutex> lock(g_registry_mutex);
  snapshot.counters.reserve(counter_registry().size());
  for (const auto& [name, ctr] : counter_registry())
    snapshot.counters.emplace_back(name, ctr.value());
  return snapshot;  // std::map iteration is already name-sorted
}

StatsSnapshot delta(const StatsSnapshot& before, const StatsSnapshot& after) {
  StatsSnapshot out;
  out.counters.reserve(after.counters.size());
  for (const auto& [name, value] : after.counters)
    out.counters.emplace_back(name, value - before.value(name));
  return out;
}

void write_stats_json(const StatsSnapshot& stats, std::ostream& out) {
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : stats.counters) {
    out << (first ? "\n" : ",\n") << "    \"" << name << "\": " << value;
    first = false;
  }
  out << "\n  }\n}\n";
}

void write_stats_json(std::ostream& out) {
  const StatsSnapshot stats = snapshot_counters();
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : stats.counters) {
    out << (first ? "\n" : ",\n") << "    \"" << name << "\": " << value;
    first = false;
  }
  out << "\n  },\n  \"histograms\": {";
  {
    const std::lock_guard<std::mutex> lock(g_registry_mutex);
    first = true;
    for (const auto& [name, histo] : histogram_registry()) {
      out << (first ? "\n" : ",\n") << "    \"" << name
          << "\": {\"count\": " << histo.count()
          << ", \"total_ns\": " << histo.total_ns() << ", \"buckets\": [";
      const auto buckets = histo.buckets();
      bool first_bucket = true;
      for (int i = 0; i < Histogram::kBuckets; ++i) {
        if (buckets[static_cast<std::size_t>(i)] == 0) continue;
        out << (first_bucket ? "" : ", ") << "[" << i << ", "
            << buckets[static_cast<std::size_t>(i)] << "]";
        first_bucket = false;
      }
      out << "]}";
      first = false;
    }
  }
  out << "\n  }\n}\n";
}

bool write_stats_file(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  write_stats_json(out);
  return out.good();
}

std::atomic<bool> Tracer::enabled_{false};

void Tracer::enable() noexcept {
  enabled_.store(true, std::memory_order_relaxed);
}
void Tracer::disable() noexcept {
  enabled_.store(false, std::memory_order_relaxed);
}

void Tracer::clear() {
  const std::lock_guard<std::mutex> lock(g_events_mutex);
  event_buffer().clear();
}

void Tracer::record(const SpanEvent& event) {
  {
    const std::lock_guard<std::mutex> lock(g_events_mutex);
    if (event_buffer().size() <
        g_trace_capacity.load(std::memory_order_relaxed)) {
      event_buffer().push_back(event);
      return;
    }
  }
  // Buffer full: drop, but leave an audit trail. The counter reference is
  // cached so the overflow path does not hammer the registry mutex.
  static Counter& dropped = counter(keys::kTraceDroppedSpans);
  dropped.add(1);
}

void Tracer::record_span(const char* name, std::uint64_t start_ns,
                         std::uint64_t dur_ns) {
  const SpanEvent event{name, this_thread_tid(), 0, start_ns, dur_ns,
                        current_request()};
  if (enabled()) record(event);
  if (internal::g_flight_enabled.load(std::memory_order_relaxed))
    internal::flight_record_span(event);
}

std::size_t Tracer::capacity() noexcept {
  return g_trace_capacity.load(std::memory_order_relaxed);
}

void Tracer::set_capacity(std::size_t capacity) noexcept {
  g_trace_capacity.store(capacity, std::memory_order_relaxed);
}

std::vector<SpanEvent> Tracer::events() {
  std::vector<SpanEvent> out;
  {
    const std::lock_guard<std::mutex> lock(g_events_mutex);
    out = event_buffer();
  }
  std::sort(out.begin(), out.end(), [](const SpanEvent& a, const SpanEvent& b) {
    if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
    if (a.dur_ns != b.dur_ns) return a.dur_ns > b.dur_ns;
    return std::strcmp(a.name, b.name) < 0;
  });
  return out;
}

void Tracer::write_chrome_trace(std::ostream& out) {
  const auto sorted = events();
  out << "{\"traceEvents\": [";
  bool first = true;
  for (const SpanEvent& event : sorted) {
    out << (first ? "\n" : ",\n")
        << "{\"name\": \"" << event.name
        << "\", \"cat\": \"mebl\", \"ph\": \"X\", \"ts\": ";
    write_us(out, event.start_ns);
    out << ", \"dur\": ";
    write_us(out, event.dur_ns);
    out << ", \"pid\": 1, \"tid\": " << event.tid
        << ", \"args\": {\"depth\": " << event.depth;
    if (event.req != 0) out << ", \"req\": " << event.req;
    out << "}}";
    first = false;
  }
  out << "\n], \"displayTimeUnit\": \"ms\"}\n";
}

bool Tracer::write_chrome_trace_file(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  write_chrome_trace(out);
  return out.good();
}

void Span::begin(const char* name) {
  name_ = name;
  depth_ = t_depth++;
  active_ = true;
  start_ns_ = now_ns();
}

void Span::end() {
  const std::uint64_t end_ns = now_ns();
  --t_depth;
  // Spans opened while both sinks were off never reach here, so depth
  // bookkeeping stays balanced; each sink re-checks its own flag because
  // either may have toggled while the span was open.
  const SpanEvent event{name_, this_thread_tid(), depth_, start_ns_,
                        end_ns - start_ns_, current_request()};
  if (Tracer::enabled()) Tracer::record(event);
  if (internal::g_flight_enabled.load(std::memory_order_relaxed))
    internal::flight_record_span(event);
}

void reset_for_testing() {
  Tracer::disable();
  Tracer::clear();
  Tracer::set_capacity(kDefaultTraceCapacity);
  t_request_tag = 0;
  set_clock_for_testing(nullptr);
  const std::lock_guard<std::mutex> lock(g_registry_mutex);
  for (auto& [name, ctr] : counter_registry())
    for (auto& shard : ctr.shards_) shard.value.store(0, std::memory_order_relaxed);
  for (auto& [name, histo] : histogram_registry()) {
    histo.count_.store(0, std::memory_order_relaxed);
    histo.total_ns_.store(0, std::memory_order_relaxed);
    for (auto& bucket : histo.buckets_)
      bucket.store(0, std::memory_order_relaxed);
  }
}

}  // namespace mebl::telemetry
