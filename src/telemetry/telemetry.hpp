#pragma once

// mebl::telemetry — span-based tracing, named counters, and latency
// histograms for the routing pipeline.
//
// Three independent facilities share one nanosecond clock:
//
//  * Tracer / Span / TELEMETRY_SPAN("stage.name") — RAII scopes that record
//    Chrome-trace ("chrome://tracing" / Perfetto) compatible complete
//    events with thread id and nesting depth. Recording is off by default;
//    a disabled span is one relaxed atomic load.
//  * counter("name") — process-wide monotonic int64 counters (rip-ups, A*
//    expansions, ILP branch-and-bound nodes, ...). Always on: an add is one
//    relaxed atomic increment on a per-thread shard, so counters shared by
//    the parallel pipeline (exec::ThreadPool fan-out) do not become cache
//    contention points; value() sums the shards. Hot paths cache the
//    returned reference, which is stable for the process lifetime.
//  * histogram("name") — log2-bucketed latency histograms (record_ns).
//
// Everything is thread-safe. Counter/histogram registration and span
// recording take a mutex; increments and disabled-span construction do not.
// JSON exports are deterministic (name-sorted, fixed number formatting) and
// byte-stable under a fixed clock (set_clock_for_testing).

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mebl::telemetry {

/// Monotonic nanosecond clock behind every telemetry timestamp. Tests
/// install a deterministic stub; pass nullptr to restore the steady clock.
using ClockFn = std::uint64_t (*)();

[[nodiscard]] std::uint64_t now_ns();
void set_clock_for_testing(ClockFn clock);

// ---------------------------------------------------------------- counters

namespace internal {
/// Stable shard slot of the calling thread (assigned round-robin on first
/// use, reduced modulo Counter shard count).
[[nodiscard]] std::size_t counter_shard() noexcept;
}  // namespace internal

/// Monotonic named counter. Obtain via counter(); add() is wait-free.
///
/// Internally sharded: each thread increments its own cache-line-aligned
/// slot, and value() sums the shards. The sum is exact whenever the reader
/// synchronizes with the writers — e.g. after the parallel_for barrier that
/// ran them, which is when the pipeline takes its snapshots.
class Counter {
 public:
  static constexpr std::size_t kShards = 8;

  void add(std::int64_t n = 1) noexcept {
    shards_[internal::counter_shard()].value.fetch_add(
        n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    std::int64_t sum = 0;
    for (const Shard& shard : shards_)
      sum += shard.value.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::int64_t> value{0};
  };
  friend void reset_for_testing();
  std::array<Shard, kShards> shards_{};
};

/// The process-wide counter `name`, created at zero on first use. The
/// reference stays valid (and the counter registered) for the process
/// lifetime, including across reset_for_testing(), which only zeroes it.
[[nodiscard]] Counter& counter(std::string_view name);

// -------------------------------------------------------------- histograms

/// Latency histogram with log2(microsecond) buckets: bucket 0 counts
/// samples under 1us, bucket i samples in [2^(i-1), 2^i) us, the last
/// bucket everything above. Obtain via histogram(); record_ns is wait-free.
class Histogram {
 public:
  static constexpr int kBuckets = 32;

  void record_ns(std::uint64_t ns) noexcept;
  [[nodiscard]] std::int64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t total_ns() const noexcept {
    return total_ns_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::array<std::int64_t, kBuckets> buckets() const noexcept;

 private:
  friend void reset_for_testing();
  std::atomic<std::int64_t> count_{0};
  std::atomic<std::uint64_t> total_ns_{0};
  std::array<std::atomic<std::int64_t>, kBuckets> buckets_{};
};

/// The process-wide histogram `name`; same lifetime rules as counter().
[[nodiscard]] Histogram& histogram(std::string_view name);

/// Mergeable point-in-time copy of one histogram. Buckets are the fixed
/// log2(microsecond) layout of Histogram, so snapshots taken on different
/// shards/processes merge by bucket-wise addition — merge() is associative
/// and commutative, which is what lets per-worker snapshots be combined in
/// any order without changing the reported quantiles.
struct HistogramSnapshot {
  std::int64_t count = 0;
  std::uint64_t total_ns = 0;
  std::array<std::int64_t, Histogram::kBuckets> buckets{};

  void merge(const HistogramSnapshot& other) noexcept;

  /// Lower/upper bound of bucket `b` in nanoseconds. Bucket 0 covers
  /// [0, 1us); bucket i covers [2^(i-1), 2^i) us; the last bucket is
  /// treated as one more doubling for interpolation purposes.
  [[nodiscard]] static std::uint64_t bucket_lower_ns(int bucket) noexcept;
  [[nodiscard]] static std::uint64_t bucket_upper_ns(int bucket) noexcept;

  /// Quantile estimate (q in [0,1]) by linear interpolation inside the
  /// bucket holding rank ceil(q*count). Deterministic integer math; 0 when
  /// the snapshot is empty.
  [[nodiscard]] std::uint64_t quantile_ns(double q) const noexcept;
};

/// Snapshot of the process-wide histogram state of `h`.
[[nodiscard]] HistogramSnapshot snapshot_histogram(const Histogram& h);

/// Name-sorted snapshots of every registered histogram.
[[nodiscard]] std::vector<std::pair<std::string, HistogramSnapshot>>
snapshot_histograms();

// --------------------------------------------------------- stats snapshots

/// Point-in-time copy of every registered counter, name-sorted. Subtracting
/// two snapshots (delta) isolates one run's activity from process totals.
struct StatsSnapshot {
  std::vector<std::pair<std::string, std::int64_t>> counters;

  /// Value of `name`, or 0 when the counter is absent.
  [[nodiscard]] std::int64_t value(std::string_view name) const noexcept;
};

[[nodiscard]] StatsSnapshot snapshot_counters();

/// after - before, keeping every counter present in `after`.
[[nodiscard]] StatsSnapshot delta(const StatsSnapshot& before,
                                  const StatsSnapshot& after);

/// Deterministic JSON dump: {"counters": {...}} for a snapshot, plus
/// {"histograms": {...}} in the whole-registry overload.
void write_stats_json(const StatsSnapshot& stats, std::ostream& out);
void write_stats_json(std::ostream& out);
[[nodiscard]] bool write_stats_file(const std::string& path);

// ------------------------------------------------------------------ tracer

/// One completed span, as recorded by the tracer.
struct SpanEvent {
  const char* name;       ///< static string passed to TELEMETRY_SPAN
  std::uint32_t tid;      ///< small per-thread id (1, 2, ... by first use)
  std::int32_t depth;     ///< nesting depth within the thread (0 = root)
  std::uint64_t start_ns;
  std::uint64_t dur_ns;
  std::uint64_t req = 0;  ///< request tag active at record time (0 = none)
};

// --------------------------------------------------------- request tagging

/// Tag every span recorded on this thread until destruction with `tag` (a
/// serve-layer request id). The tag is thread-local so several dispatch
/// lanes can each run a RequestScope concurrently without clobbering one
/// another's ids; exec-pool workers inherit the submitting thread's tag
/// for the duration of one parallel_for job (the pool captures it at
/// submit via current_request() and installs it around each participant
/// with exchange_request_tag()). Scopes nest; the previous tag is restored
/// on destruction.
class RequestScope {
 public:
  explicit RequestScope(std::uint64_t tag) noexcept;
  ~RequestScope();
  RequestScope(const RequestScope&) = delete;
  RequestScope& operator=(const RequestScope&) = delete;

 private:
  std::uint64_t previous_;
};

/// The calling thread's active request tag (0 when no RequestScope is
/// live on it).
[[nodiscard]] std::uint64_t current_request() noexcept;

/// Install `tag` as the calling thread's request tag and return the one it
/// replaced. The exec pool brackets each parallel_for participant with
/// this (install the job's tag, run, restore) so worker spans carry the
/// right request even when multiple serve lanes share the process.
std::uint64_t exchange_request_tag(std::uint64_t tag) noexcept;

namespace internal {
/// Set by the flight recorder so Span construction stays one (well, two)
/// relaxed loads when both the tracer and the recorder are off.
extern std::atomic<bool> g_flight_enabled;
/// Flight-recorder span sink; defined in flight_recorder.cpp.
void flight_record_span(const SpanEvent& event) noexcept;
/// The calling thread's small dense telemetry id (same numbering spans use).
[[nodiscard]] std::uint32_t thread_tid() noexcept;
}  // namespace internal

/// Global span recorder. enable() before the traced region, then export
/// with write_chrome_trace*() — the output opens directly in Perfetto
/// (ui.perfetto.dev) or chrome://tracing.
class Tracer {
 public:
  static void enable() noexcept;
  static void disable() noexcept;
  [[nodiscard]] static bool enabled() noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Drop every recorded event (leaves the enabled flag untouched).
  static void clear();

  /// Snapshot of the recorded events, sorted by (start, -duration, name)
  /// so parents precede their children deterministically.
  [[nodiscard]] static std::vector<SpanEvent> events();

  /// Chrome trace-event JSON ({"traceEvents": [...]}, "X" phase events,
  /// microsecond timestamps). Deterministic for a given event set.
  static void write_chrome_trace(std::ostream& out);
  [[nodiscard]] static bool write_chrome_trace_file(const std::string& path);

  /// Record a span that was measured manually (no RAII scope) — e.g. the
  /// serve layer's queue-wait span, whose start predates the dispatcher
  /// thread picking the job up. Tagged with current_request() and fed to
  /// the flight recorder exactly like a Span.
  static void record_span(const char* name, std::uint64_t start_ns,
                          std::uint64_t dur_ns);

  /// The event buffer holds at most capacity() events; further records are
  /// dropped and counted in telemetry::keys::kTraceDroppedSpans. The
  /// default (1<<18 events, ~12 MiB) is far above one pipeline run.
  [[nodiscard]] static std::size_t capacity() noexcept;
  static void set_capacity(std::size_t capacity) noexcept;

 private:
  friend class Span;
  static void record(const SpanEvent& event);
  static std::atomic<bool> enabled_;
};

/// RAII tracing scope; use through TELEMETRY_SPAN. When the tracer is
/// disabled, construction is a single relaxed load and nothing is recorded
/// at destruction (spans open across an enable() are likewise dropped).
class Span {
 public:
  explicit Span(const char* name) {
    if (Tracer::enabled() ||
        internal::g_flight_enabled.load(std::memory_order_relaxed))
      begin(name);
  }
  ~Span() {
    if (active_) end();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void begin(const char* name);
  void end();

  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;
  std::int32_t depth_ = 0;
  bool active_ = false;
};

/// Zero every counter and histogram, drop all trace events, disable the
/// tracer, and restore the real clock. Registered counter/histogram
/// references stay valid. Tests only.
void reset_for_testing();

}  // namespace mebl::telemetry

#define MEBL_TELEMETRY_CONCAT_IMPL(a, b) a##b
#define MEBL_TELEMETRY_CONCAT(a, b) MEBL_TELEMETRY_CONCAT_IMPL(a, b)

/// Trace the rest of the enclosing scope as a span named `name` (a string
/// literal or other static string).
#define TELEMETRY_SPAN(name)                                       \
  ::mebl::telemetry::Span MEBL_TELEMETRY_CONCAT(mebl_telemetry_span_, \
                                                __LINE__)(name)
