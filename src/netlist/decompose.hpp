#pragma once

#include <vector>

#include "netlist/netlist.hpp"

namespace mebl::netlist {

/// Decompose a multi-pin net into 2-pin subnets along a Manhattan-distance
/// minimum spanning tree over its pins (Prim). Nets with fewer than two pins
/// yield no subnets.
[[nodiscard]] std::vector<Subnet> decompose_net(const Netlist& netlist,
                                                NetId id);

/// Decompose every net of the netlist; subnets are grouped net by net in
/// netlist order.
[[nodiscard]] std::vector<Subnet> decompose_all(const Netlist& netlist);

}  // namespace mebl::netlist
