#include "netlist/decompose.hpp"

#include <limits>

namespace mebl::netlist {

std::vector<Subnet> decompose_net(const Netlist& netlist, NetId id) {
  const Net& net = netlist.net(id);
  std::vector<Subnet> subnets;
  const std::size_t n = net.pins.size();
  if (n < 2) return subnets;
  subnets.reserve(n - 1);

  // Prim's MST on the complete Manhattan graph over the pins. Pin counts per
  // net are small (tens at most), so O(n^2) is fine and allocation-light.
  std::vector<geom::Point> pts;
  pts.reserve(n);
  for (PinId p : net.pins) pts.push_back(netlist.pin(p).pos);

  std::vector<bool> in_tree(n, false);
  std::vector<geom::Coord> best(n, std::numeric_limits<geom::Coord>::max());
  std::vector<std::size_t> parent(n, 0);
  best[0] = 0;
  for (std::size_t iter = 0; iter < n; ++iter) {
    std::size_t u = n;
    for (std::size_t i = 0; i < n; ++i)
      if (!in_tree[i] && (u == n || best[i] < best[u])) u = i;
    in_tree[u] = true;
    if (u != 0) subnets.push_back(Subnet{id, pts[parent[u]], pts[u]});
    for (std::size_t v = 0; v < n; ++v) {
      if (in_tree[v]) continue;
      const geom::Coord d = manhattan(pts[u], pts[v]);
      if (d < best[v]) {
        best[v] = d;
        parent[v] = u;
      }
    }
  }
  return subnets;
}

std::vector<Subnet> decompose_all(const Netlist& netlist) {
  std::vector<Subnet> all;
  for (const Net& net : netlist.nets()) {
    auto subnets = decompose_net(netlist, net.id);
    all.insert(all.end(), subnets.begin(), subnets.end());
  }
  return all;
}

}  // namespace mebl::netlist
