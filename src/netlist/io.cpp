#include "netlist/io.hpp"

#include <fstream>
#include <sstream>

#include "util/log.hpp"

namespace mebl::netlist {

void write_design(std::ostream& out, const Design& design) {
  const auto& grid = design.grid;
  const auto& stitch = grid.stitch();
  out << "mebl 1\n";
  out << "grid " << grid.width() << ' ' << grid.height() << ' '
      << grid.num_routing_layers() << ' ' << grid.tile_size() << '\n';
  // A uniform plan round-trips through its pitch; anything else is written
  // as an explicit line list.
  bool uniform = true;
  {
    geom::Coord expect = stitch.pitch();
    for (const geom::Coord x : stitch.lines()) {
      if (x != expect) {
        uniform = false;
        break;
      }
      expect += stitch.pitch();
    }
    if (uniform && !stitch.lines().empty() &&
        stitch.lines().front() != stitch.pitch())
      uniform = false;
  }
  if (uniform && !stitch.lines().empty()) {
    out << "stitch " << stitch.pitch() << ' ' << stitch.epsilon() << ' '
        << stitch.escape_halfwidth() << '\n';
  } else {
    out << "stitch_lines " << stitch.epsilon() << ' '
        << stitch.escape_halfwidth() << ' ' << stitch.lines().size();
    for (const geom::Coord x : stitch.lines()) out << ' ' << x;
    out << '\n';
  }
  for (const Net& net : design.netlist.nets()) {
    out << "net " << net.name << ' ' << net.pins.size();
    for (const PinId pin : net.pins) {
      const geom::Point p = design.netlist.pin(pin).pos;
      out << ' ' << p.x << ' ' << p.y;
    }
    out << '\n';
  }
}

bool save_design(const std::string& path, const Design& design) {
  std::ofstream out(path);
  if (!out) return false;
  write_design(out, design);
  return static_cast<bool>(out);
}

std::optional<Design> read_design(std::istream& in) {
  const auto fail = [](const char* why) -> std::optional<Design> {
    util::log_warn() << "read_design: " << why;
    return std::nullopt;
  };

  std::string word;
  int version = 0;
  if (!(in >> word >> version) || word != "mebl" || version != 1)
    return fail("missing or unsupported 'mebl <version>' header");

  geom::Coord width = 0, height = 0, tile = 0;
  int layers = 0;
  if (!(in >> word >> width >> height >> layers >> tile) || word != "grid" ||
      width <= 0 || height <= 0 || layers < 2 || tile <= 0)
    return fail("malformed 'grid' record");

  if (!(in >> word)) return fail("missing stitch record");
  std::optional<grid::StitchPlan> plan;
  if (word == "stitch") {
    geom::Coord pitch = 0, epsilon = 0, escape = 0;
    if (!(in >> pitch >> epsilon >> escape) || pitch <= 0 || epsilon < 0)
      return fail("malformed 'stitch' record");
    plan = grid::StitchPlan(width, pitch, epsilon, escape);
  } else if (word == "stitch_lines") {
    geom::Coord epsilon = 0, escape = 0;
    std::size_t count = 0;
    if (!(in >> epsilon >> escape >> count) || epsilon < 0)
      return fail("malformed 'stitch_lines' record");
    std::vector<geom::Coord> lines(count);
    for (auto& x : lines)
      if (!(in >> x)) return fail("truncated 'stitch_lines' record");
    plan = grid::StitchPlan::from_lines(width, std::move(lines), epsilon,
                                        escape);
  } else {
    return fail("expected 'stitch' or 'stitch_lines'");
  }

  Design design{grid::RoutingGrid(width, height, layers, tile, *plan),
                Netlist{}};
  while (in >> word) {
    if (word != "net") return fail("expected 'net' record");
    std::string name;
    std::size_t pins = 0;
    if (!(in >> name >> pins)) return fail("malformed 'net' record");
    const NetId id = design.netlist.add_net(std::move(name));
    for (std::size_t i = 0; i < pins; ++i) {
      geom::Point p;
      if (!(in >> p.x >> p.y)) return fail("truncated pin list");
      if (!design.grid.in_bounds(p)) return fail("pin out of bounds");
      design.netlist.add_pin(id, p);
    }
  }
  return design;
}

std::optional<Design> load_design(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    util::log_warn() << "load_design: cannot open " << path;
    return std::nullopt;
  }
  return read_design(in);
}

}  // namespace mebl::netlist
