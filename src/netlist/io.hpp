#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "grid/routing_grid.hpp"
#include "netlist/netlist.hpp"

namespace mebl::netlist {

/// A routing problem instance: the fabric plus the netlist. This is the
/// unit the text format round-trips, so benchmark circuits can be archived
/// and exchanged without the generator.
struct Design {
  grid::RoutingGrid grid;
  Netlist netlist;
};

/// Plain-text design format ("MEBL1"):
///
///   mebl 1
///   grid <width> <height> <routing_layers> <tile_size>
///   stitch <pitch> <epsilon> <escape_halfwidth>        (uniform plan)  OR
///   stitch_lines <epsilon> <escape_halfwidth> <n> <x1> ... <xn>
///   net <name> <num_pins> <x1> <y1> ...
///   ...
///
/// Whitespace-separated, one `net` record per net, deterministic order.
void write_design(std::ostream& out, const Design& design);

/// Serialize to a file. Returns false on I/O failure.
bool save_design(const std::string& path, const Design& design);

/// Parse a design; returns std::nullopt on malformed input (the reason is
/// reported through util::log_warn).
[[nodiscard]] std::optional<Design> read_design(std::istream& in);

/// Load from a file; std::nullopt when unreadable or malformed.
[[nodiscard]] std::optional<Design> load_design(const std::string& path);

}  // namespace mebl::netlist
