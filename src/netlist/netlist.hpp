#pragma once

#include <string>
#include <vector>

#include "geom/rect.hpp"

namespace mebl::netlist {

using NetId = std::int32_t;
using PinId = std::int32_t;

/// Fixed terminal of a net. Pins sit on the pin layer (layer 0) at a track
/// intersection; the router must bring a via stack / wire to each pin. Pins
/// may fall on stitching-line columns — the paper tolerates via violations
/// only at such fixed pins.
struct Pin {
  geom::Point pos;
  NetId net = -1;

  friend constexpr bool operator==(const Pin&, const Pin&) = default;
};

/// A net: a named set of pins to be electrically connected.
struct Net {
  std::string name;
  NetId id = -1;
  std::vector<PinId> pins;

  [[nodiscard]] std::size_t degree() const noexcept { return pins.size(); }
};

/// Netlist over a routing grid: nets, pins, and lookup helpers.
class Netlist {
 public:
  Netlist() = default;

  /// Create an empty net; returns its id.
  NetId add_net(std::string name);

  /// Add a pin to a net; returns the pin id.
  PinId add_pin(NetId net, geom::Point pos);

  /// Relocate an existing pin (used by placement refinement).
  void move_pin(PinId pin, geom::Point pos);

  [[nodiscard]] const std::vector<Net>& nets() const noexcept { return nets_; }
  [[nodiscard]] const std::vector<Pin>& pins() const noexcept { return pins_; }
  [[nodiscard]] const Net& net(NetId id) const { return nets_.at(id); }
  [[nodiscard]] const Pin& pin(PinId id) const { return pins_.at(id); }
  [[nodiscard]] std::size_t num_nets() const noexcept { return nets_.size(); }
  [[nodiscard]] std::size_t num_pins() const noexcept { return pins_.size(); }

  /// Bounding box of a net's pins.
  [[nodiscard]] geom::Rect net_bbox(NetId id) const;

  /// Half-perimeter wirelength lower bound of a net.
  [[nodiscard]] geom::Coord net_hpwl(NetId id) const;

 private:
  std::vector<Net> nets_;
  std::vector<Pin> pins_;
};

/// A 2-pin connection produced by multi-pin net decomposition. Detailed and
/// global routing operate on these.
struct Subnet {
  NetId net = -1;
  geom::Point a;
  geom::Point b;

  [[nodiscard]] geom::Coord hpwl() const noexcept { return manhattan(a, b); }
  [[nodiscard]] geom::Rect bbox() const noexcept {
    return geom::Rect::bounding(a, b);
  }
};

}  // namespace mebl::netlist
