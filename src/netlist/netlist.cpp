#include "netlist/netlist.hpp"

#include <cassert>

namespace mebl::netlist {

NetId Netlist::add_net(std::string name) {
  const NetId id = static_cast<NetId>(nets_.size());
  nets_.push_back(Net{std::move(name), id, {}});
  return id;
}

PinId Netlist::add_pin(NetId net, geom::Point pos) {
  assert(net >= 0 && net < static_cast<NetId>(nets_.size()));
  const PinId id = static_cast<PinId>(pins_.size());
  pins_.push_back(Pin{pos, net});
  nets_[net].pins.push_back(id);
  return id;
}

void Netlist::move_pin(PinId pin, geom::Point pos) {
  assert(pin >= 0 && pin < static_cast<PinId>(pins_.size()));
  pins_[static_cast<std::size_t>(pin)].pos = pos;
}

geom::Rect Netlist::net_bbox(NetId id) const {
  geom::Rect box;
  for (PinId p : net(id).pins)
    box = box.hull(geom::Rect::bounding(pins_[p].pos, pins_[p].pos));
  return box;
}

geom::Coord Netlist::net_hpwl(NetId id) const {
  const geom::Rect box = net_bbox(id);
  return box.empty() ? 0 : (box.width() - 1) + (box.height() - 1);
}

}  // namespace mebl::netlist
